package workload

import (
	"reflect"
	"testing"

	"bsdtrace/internal/analyzer"
	"bsdtrace/internal/trace"
)

// genA5 generates and caches a one-hour A5 trace shared by the
// calibration tests.
var a5cache []trace.Event

func genA5(t *testing.T) []trace.Event {
	t.Helper()
	if a5cache == nil {
		res, err := Generate(Config{Profile: "A5", Seed: 7, Duration: 1 * trace.Hour})
		if err != nil {
			t.Fatal(err)
		}
		a5cache = res.Events
	}
	return a5cache
}

func TestGenerateValidTrace(t *testing.T) {
	events := genA5(t)
	if len(events) < 5000 {
		t.Fatalf("only %d events in an hour", len(events))
	}
	errs, _ := trace.Validate(events)
	for _, err := range errs {
		t.Errorf("validator: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Profile: "C4", Seed: 3, Duration: 20 * trace.Minute}
	r1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Events, r2.Events) {
		t.Fatalf("same seed produced different traces (%d vs %d events)", len(r1.Events), len(r2.Events))
	}
	r3, err := Generate(Config{Profile: "C4", Seed: 4, Duration: 20 * trace.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(r1.Events, r3.Events) {
		t.Fatalf("different seeds produced identical traces")
	}
}

func TestUnknownProfile(t *testing.T) {
	if _, err := Generate(Config{Profile: "Z9"}); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestAllProfilesGenerate(t *testing.T) {
	for name, prof := range Profiles() {
		res, err := Generate(Config{Profile: name, Seed: 11, Duration: 15 * trace.Minute})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Events) == 0 {
			t.Errorf("%s: empty trace", name)
		}
		if res.Profile.Name != name || res.Profile.Users() != prof.Users() {
			t.Errorf("%s: profile mismatch: %+v", name, res.Profile)
		}
		errs, _ := trace.Validate(res.Events)
		if len(errs) != 0 {
			t.Errorf("%s: invalid trace: %v", name, errs[0])
		}
	}
}

func TestUserScale(t *testing.T) {
	small, err := Generate(Config{Profile: "A5", Seed: 5, Duration: 20 * trace.Minute, UserScale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if small.Profile.Users() >= 28 {
		t.Errorf("UserScale did not shrink the population: %d users", small.Profile.Users())
	}
	full, err := Generate(Config{Profile: "A5", Seed: 5, Duration: 20 * trace.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if len(small.Events) >= len(full.Events) {
		t.Errorf("quarter population generated more events (%d) than full (%d)", len(small.Events), len(full.Events))
	}
}

func TestEventMixNearPaper(t *testing.T) {
	events := genA5(t)
	var c trace.Counts
	for _, e := range events {
		c.Add(e)
	}
	// Loose brackets around the paper's Table III fractions.
	checks := []struct {
		kind     trace.Kind
		min, max float64
	}{
		{trace.KindCreate, 0.02, 0.12},
		{trace.KindOpen, 0.20, 0.40},
		{trace.KindClose, 0.28, 0.42},
		{trace.KindSeek, 0.10, 0.30},
		{trace.KindUnlink, 0.01, 0.08},
		{trace.KindExec, 0.03, 0.12},
	}
	for _, ch := range checks {
		f := c.Fraction(ch.kind)
		if f < ch.min || f > ch.max {
			t.Errorf("%v fraction = %.3f, want [%.2f, %.2f]", ch.kind, f, ch.min, ch.max)
		}
	}
}

// The headline Section-5 shapes must hold on a generated trace: this test
// is the contract between the workload generator and EXPERIMENTS.md.
func TestCalibrationShapes(t *testing.T) {
	events := genA5(t)
	a := analyzer.Analyze(events, analyzer.Options{})

	// Sequentiality (Table V): most accesses whole-file, nearly all
	// sequential; read-write accesses mostly non-sequential.
	if f := a.Sequentiality.WholeFileFraction(analyzer.ClassReadOnly); f < 0.55 || f > 0.80 {
		t.Errorf("whole-file read fraction = %.2f, want ~0.63-0.70", f)
	}
	if f := a.Sequentiality.WholeFileFraction(analyzer.ClassWriteOnly); f < 0.65 || f > 0.95 {
		t.Errorf("whole-file write fraction = %.2f, want ~0.81-0.85", f)
	}
	if f := a.Sequentiality.SequentialFraction(analyzer.ClassReadOnly); f < 0.85 {
		t.Errorf("sequential read fraction = %.2f, want >= 0.85", f)
	}
	if f := a.Sequentiality.SequentialFraction(analyzer.ClassWriteOnly); f < 0.90 {
		t.Errorf("sequential write fraction = %.2f, want >= 0.90", f)
	}
	if f := a.Sequentiality.SequentialFraction(analyzer.ClassReadWrite); f > 0.60 {
		t.Errorf("sequential read-write fraction = %.2f, want mostly non-sequential", f)
	}

	// Open durations (Figure 3): most opens are short.
	if f := a.OpenTimes.FractionAtOrBelow(0.5); f < 0.65 || f > 0.90 {
		t.Errorf("opens <= 0.5s = %.2f, want ~0.75", f)
	}
	if f := a.OpenTimes.FractionAtOrBelow(10); f < 0.85 {
		t.Errorf("opens <= 10s = %.2f, want ~0.90", f)
	}

	// File sizes (Figure 2): accesses dominated by short files, bytes
	// much less so.
	byFiles := a.FileSizesByFiles.FractionAtOrBelow(10240)
	byBytes := a.FileSizesByBytes.FractionAtOrBelow(10240)
	if byFiles < 0.60 {
		t.Errorf("accesses to files <= 10KB = %.2f, want ~0.80", byFiles)
	}
	if byBytes > byFiles-0.2 {
		t.Errorf("bytes from small files (%.2f) should lag accesses (%.2f)", byBytes, byFiles)
	}

	// Lifetimes (Figure 4): most new files die within minutes, with a
	// visible spike near 180 seconds from the status daemon.
	lf := a.Lifetimes.ByFiles
	if f := lf.FractionAtOrBelow(300); f < 0.55 {
		t.Errorf("new files dead within 5 minutes = %.2f, want most", f)
	}
	spike := lf.FractionAtOrBelow(182) - lf.FractionAtOrBelow(178)
	if spike < 0.10 {
		t.Errorf("180s lifetime spike = %.2f of files, want >= 0.10", spike)
	}

	// Activity (Table IV): hundreds of bytes per second per active user
	// over 10-minute windows, an order of magnitude burstier over 10s.
	if m := a.Activity.Long.PerUserThroughput.Mean(); m < 100 || m > 2000 {
		t.Errorf("per-user 10-min throughput = %.0f B/s, want a few hundred", m)
	}
	if m := a.Activity.Short.PerUserThroughput.Mean(); m < a.Activity.Long.PerUserThroughput.Mean() {
		t.Errorf("10-second throughput should exceed 10-minute throughput")
	}
}

func TestDefaultsFill(t *testing.T) {
	var c Config
	if err := c.fill(); err != nil {
		t.Fatal(err)
	}
	if c.Profile != "A5" || c.Duration != 8*trace.Hour || c.UserScale != 1.0 {
		t.Errorf("defaults wrong: %+v", c)
	}
}

func TestKernelStatsPopulated(t *testing.T) {
	res, err := Generate(Config{Profile: "A5", Seed: 2, Duration: 10 * trace.Minute})
	if err != nil {
		t.Fatal(err)
	}
	st := res.KernelStats
	if st.Opens == 0 || st.Creates == 0 || st.Closes == 0 || st.Seeks == 0 || st.BytesRead == 0 || st.BytesWritten == 0 {
		t.Errorf("kernel stats look empty: %+v", st)
	}
	// The trace's close count equals the kernel's.
	var c trace.Counts
	for _, e := range res.Events {
		c.Add(e)
	}
	if c.ByKind[trace.KindClose] != st.Closes {
		t.Errorf("trace closes %d != kernel closes %d", c.ByKind[trace.KindClose], st.Closes)
	}
}

// TestProfileDifferences asserts the machine-to-machine contrasts the
// paper's Table IV shows: the CAD machine (C4) has the fewest users but
// the highest per-user data rates; Ucbernie (E3) has the most users.
func TestProfileDifferences(t *testing.T) {
	analyses := map[string]*analyzer.Analysis{}
	for _, name := range []string{"A5", "E3", "C4"} {
		res, err := Generate(Config{Profile: name, Seed: 7, Duration: 1 * trace.Hour})
		if err != nil {
			t.Fatal(err)
		}
		analyses[name] = analyzer.Analyze(res.Events, analyzer.Options{})
	}
	a5, e3, c4 := analyses["A5"], analyses["E3"], analyses["C4"]
	if c4.Activity.TotalUsers >= a5.Activity.TotalUsers {
		t.Errorf("C4 should have fewer users: %d vs %d", c4.Activity.TotalUsers, a5.Activity.TotalUsers)
	}
	if e3.Activity.TotalUsers <= a5.Activity.TotalUsers {
		t.Errorf("E3 should have the most users: %d vs %d", e3.Activity.TotalUsers, a5.Activity.TotalUsers)
	}
	if c4.Activity.Long.PerUserThroughput.Mean() <= a5.Activity.Long.PerUserThroughput.Mean() {
		t.Errorf("CAD users should move more data: %.0f vs %.0f B/s",
			c4.Activity.Long.PerUserThroughput.Mean(), a5.Activity.Long.PerUserThroughput.Mean())
	}
	// All three still show the same qualitative shapes (paper §7: "The
	// results are similar in all three traces").
	for name, a := range analyses {
		if f := a.Sequentiality.SequentialFraction(analyzer.ClassReadOnly); f < 0.85 {
			t.Errorf("%s: sequential reads %.2f", name, f)
		}
		if f := a.OpenTimes.FractionAtOrBelow(10); f < 0.85 {
			t.Errorf("%s: opens<=10s %.2f", name, f)
		}
	}
}

// TestDiurnalCycle: with the day/night cycle on, afternoon activity far
// exceeds small-hours activity; off, the load is roughly flat.
func TestDiurnalCycle(t *testing.T) {
	res, err := Generate(Config{Profile: "A5", Seed: 13, Duration: 24 * trace.Hour, Diurnal: true})
	if err != nil {
		t.Fatal(err)
	}
	countIn := func(events []trace.Event, from, to trace.Time) int {
		n := 0
		for _, e := range events {
			if e.Time >= from && e.Time < to {
				n++
			}
		}
		return n
	}
	night := countIn(res.Events, 1*trace.Hour, 5*trace.Hour)       // 1-5 a.m.
	afternoon := countIn(res.Events, 13*trace.Hour, 17*trace.Hour) // 1-5 p.m.
	if afternoon < night*2 {
		t.Errorf("diurnal cycle too weak: %d events at night vs %d in the afternoon", night, afternoon)
	}

	flat, err := Generate(Config{Profile: "A5", Seed: 13, Duration: 24 * trace.Hour})
	if err != nil {
		t.Fatal(err)
	}
	fNight := countIn(flat.Events, 1*trace.Hour, 5*trace.Hour)
	fAfternoon := countIn(flat.Events, 13*trace.Hour, 17*trace.Hour)
	if fNight == 0 || fAfternoon > fNight*2 {
		t.Errorf("flat load looks diurnal: %d vs %d", fNight, fAfternoon)
	}
}

func TestLoadFactorShape(t *testing.T) {
	if loadFactor(4*trace.Hour) >= loadFactor(14*trace.Hour) {
		t.Errorf("4am should be quieter than 2pm")
	}
	if loadFactor(14*trace.Hour) != 1.0 {
		t.Errorf("afternoon peak should be 1.0")
	}
	// Second virtual day wraps.
	if loadFactor(24*trace.Hour+14*trace.Hour) != 1.0 {
		t.Errorf("cycle should repeat daily")
	}
}
