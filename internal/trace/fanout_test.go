package trace_test

import (
	"errors"
	"io"
	"sync"
	"testing"

	"bsdtrace/internal/trace"
)

func fanoutEvents(n int) []trace.Event {
	events := make([]trace.Event, n)
	for i := range events {
		events[i] = trace.Event{Time: trace.Time(i), Kind: trace.KindOpen,
			OpenID: trace.OpenID(i + 1), File: trace.FileID(i%10 + 1), User: 1}
	}
	return events
}

// produce writes events into f from the calling goroutine and closes
// it with err, tolerating ErrFanoutDone.
func produce(f *trace.Fanout, events []trace.Event, err error) {
	for _, e := range events {
		if werr := f.Write(e); werr != nil {
			f.Close(err)
			return
		}
	}
	f.Close(err)
}

// TestFanoutDeliversToAll: every subscriber sees the whole stream,
// concurrently, regardless of relative consumption speed or access
// path. Run with -race this is also the memory-model check on the
// shared batches.
func TestFanoutDeliversToAll(t *testing.T) {
	events := fanoutEvents(4*trace.DefaultBatchSize + 37)
	const subs = 4
	f := trace.NewFanout(subs)

	var wg sync.WaitGroup
	got := make([][]trace.Event, subs)
	errs := make([]error, subs)
	for i := 0; i < subs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := f.Source(i)
			defer src.Cancel()
			buf := make([]trace.Event, 1+i*17) // different batch sizes per sub
			for {
				var n int
				var err error
				if i%2 == 0 {
					var e trace.Event
					e, err = src.Next()
					if err == nil {
						got[i] = append(got[i], e)
						continue
					}
				} else {
					n, err = src.NextBatch(buf)
					if n > 0 {
						got[i] = append(got[i], buf[:n]...)
						continue
					}
				}
				errs[i] = err
				return
			}
		}(i)
	}
	produce(f, events, nil)
	wg.Wait()

	for i := 0; i < subs; i++ {
		if errs[i] != io.EOF {
			t.Fatalf("sub %d ended with %v, want io.EOF", i, errs[i])
		}
		if len(got[i]) != len(events) {
			t.Fatalf("sub %d got %d events, want %d", i, len(got[i]), len(events))
		}
		for j := range events {
			if got[i][j] != events[j] {
				t.Fatalf("sub %d event %d = %+v, want %+v", i, j, got[i][j], events[j])
			}
		}
	}
}

// TestFanoutCancelMidStream: one subscriber bailing early must not
// disturb the others or wedge the producer.
func TestFanoutCancelMidStream(t *testing.T) {
	events := fanoutEvents(6 * trace.DefaultBatchSize)
	f := trace.NewFanout(2)

	var wg sync.WaitGroup
	var full int
	wg.Add(2)
	go func() { // quitter: a few events then cancel
		defer wg.Done()
		src := f.Source(0)
		for i := 0; i < 3; i++ {
			if _, err := src.Next(); err != nil {
				t.Errorf("quitter Next: %v", err)
				return
			}
		}
		src.Cancel()
	}()
	go func() { // stayer: drains everything
		defer wg.Done()
		src := f.Source(1)
		defer src.Cancel()
		for {
			if _, err := src.Next(); err != nil {
				if err != io.EOF {
					t.Errorf("stayer ended with %v, want io.EOF", err)
				}
				return
			}
			full++
		}
	}()
	produce(f, events, nil)
	wg.Wait()
	if full != len(events) {
		t.Fatalf("surviving subscriber got %d events, want %d", full, len(events))
	}
}

// TestFanoutAllCanceled: once every subscriber cancels, Write reports
// ErrFanoutDone so the producer can stop generating.
func TestFanoutAllCanceled(t *testing.T) {
	f := trace.NewFanout(2)
	f.Source(0).Cancel()
	f.Source(1).Cancel()
	var last error
	for i := 0; i < 2*trace.DefaultBatchSize && last == nil; i++ {
		last = f.Write(trace.Event{Time: trace.Time(i), Kind: trace.KindOpen, OpenID: 1, File: 1})
	}
	if !errors.Is(last, trace.ErrFanoutDone) {
		t.Fatalf("Write after all cancels = %v, want ErrFanoutDone", last)
	}
	f.Close(nil)
}

// TestFanoutErrorPropagates: a producer failure surfaces as each
// subscriber's terminal error, after all complete batches deliver.
func TestFanoutErrorPropagates(t *testing.T) {
	events := fanoutEvents(trace.DefaultBatchSize + 5)
	boom := errors.New("generator failed")
	f := trace.NewFanout(2)

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := f.Source(i)
			defer src.Cancel()
			n := 0
			for {
				_, err := src.Next()
				if err != nil {
					if err != boom {
						t.Errorf("sub %d terminal error = %v, want %v", i, err, boom)
					}
					if n != len(events) {
						t.Errorf("sub %d got %d events before the error, want %d", i, n, len(events))
					}
					return
				}
				n++
			}
		}(i)
	}
	produce(f, events, boom)
	wg.Wait()
}
