package trace

import "io"

// LenientSource is the degraded-mode ingestion wrapper the commands'
// -lenient flags install: a RecoverSource repair pass plus absorption of
// mid-stream decode errors. A version-1 stream has no checkpoints to
// resync at, so when its reader fails mid-stream the wrapper ends the
// stream at the last good record instead of failing the run, keeping the
// error for the damage report. Version-2 readers self-heal below this
// layer and only surface real I/O errors, which still propagate.
type LenientSource struct {
	rec   *RecoverSource
	trunc error
}

// NewLenientSource wraps src for degraded-mode ingestion.
func NewLenientSource(src Source) *LenientSource {
	s := &LenientSource{}
	s.rec = NewRecoverSource(FuncSource(func() (Event, error) {
		if s.trunc != nil {
			return Event{}, io.EOF
		}
		e, err := src.Next()
		if err != nil && err != io.EOF {
			s.trunc = err
			return Event{}, io.EOF
		}
		return e, err
	}))
	return s
}

// Next returns the next repaired event.
func (s *LenientSource) Next() (Event, error) { return s.rec.Next() }

// NextBatch repairs a batch of events in one call.
func (s *LenientSource) NextBatch(buf []Event) (int, error) { return s.rec.NextBatch(buf) }

// Stats returns the repair budget so far.
func (s *LenientSource) Stats() RepairStats { return s.rec.Stats() }

// Truncated returns the decode error that ended the stream early, or
// nil if the stream ran to a clean EOF.
func (s *LenientSource) Truncated() error { return s.trunc }
