package trace

import (
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// These are white-box tests: the cancel-during-flush race is about the
// internal sharedBatch refcount, so they reach into the unexported
// state to stage the exact interleaving and to observe the reclaim.

func stressEvent(i int) Event {
	return Event{Time: Time(i), Kind: KindOpen, OpenID: OpenID(i + 1), File: FileID(i%10 + 1), User: 1}
}

// TestFanoutCancelSendRaceReclaimedByClose stages the lost race by
// hand: the producer polled the subscriber as live, the subscriber then
// canceled and ran its drain (finding nothing), and the producer's send
// landed anyway. The batch now sits in the channel of a consumer that
// will never read again; Close must hand it back to the pool.
func TestFanoutCancelSendRaceReclaimedByClose(t *testing.T) {
	f := NewFanout(1)
	s := f.Source(0)
	sb := &sharedBatch{events: GetBatch()[:1]}
	sb.refs.Store(1)
	s.once.Do(func() { close(s.cancel) }) // Cancel's close+drain already ran
	s.ch <- sb                            // the racing send wins
	f.Close(nil)
	if got := sb.refs.Load(); got != 0 {
		t.Fatalf("stranded batch refs = %d after Close, want 0", got)
	}
}

// TestFanoutCancelSendRaceReclaimedByFlush is the same staged race, but
// the producer keeps writing: the next flush must retire the canceled
// subscriber and reclaim the stranded batch rather than leaving it (and
// everything queued behind it) lost to the pool.
func TestFanoutCancelSendRaceReclaimedByFlush(t *testing.T) {
	f := NewFanout(2)
	quitter, stayer := f.Source(0), f.Source(1)
	sb := &sharedBatch{events: GetBatch()[:1]}
	sb.refs.Store(1)
	quitter.once.Do(func() { close(quitter.cancel) })
	quitter.ch <- sb

	done := make(chan struct{})
	go func() {
		defer close(done)
		defer stayer.Cancel()
		for {
			if _, err := stayer.Next(); err != nil {
				return
			}
		}
	}()
	for i := 0; i < DefaultBatchSize; i++ { // exactly one flush
		if err := f.Write(stressEvent(i)); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if got := sb.refs.Load(); got != 0 {
		t.Fatalf("stranded batch refs = %d after the next flush, want 0", got)
	}
	if !quitter.dead {
		t.Fatalf("canceled subscriber not retired by flush")
	}
	f.Close(nil)
	<-done
}

// TestFanoutSubscribeAfterClose: a late subscriber gets a terminated
// stream carrying the closing error instead of a hang.
func TestFanoutSubscribeAfterClose(t *testing.T) {
	f := NewFanout(0)
	f.Close(nil)
	s := f.Subscribe()
	if _, err := s.Next(); err != io.EOF {
		t.Fatalf("Next on post-close subscriber = %v, want io.EOF", err)
	}
}

// TestFanoutSubscribeMidStream: a dynamic subscriber joins at a batch
// boundary and sees a contiguous suffix of the stream through EOF.
func TestFanoutSubscribeMidStream(t *testing.T) {
	// Much longer than the fanoutChanBuffer window, so the producer
	// cannot already have finished when the joiner subscribes.
	const total = 32 * DefaultBatchSize
	f := NewFanout(1)

	var wg sync.WaitGroup
	wg.Add(1)
	joined := make(chan *FanoutSub, 1)
	go func() { // anchor consumer; subscribes the joiner partway in
		defer wg.Done()
		src := f.Source(0)
		defer src.Cancel()
		n := 0
		for {
			if _, err := src.Next(); err != nil {
				return
			}
			if n++; n == 3*DefaultBatchSize {
				joined <- f.Subscribe()
			}
		}
	}()

	var late []Event
	wg.Add(1)
	go func() {
		defer wg.Done()
		src := <-joined
		defer src.Cancel()
		for {
			e, err := src.Next()
			if err != nil {
				return
			}
			late = append(late, e)
		}
	}()

	for i := 0; i < total; i++ {
		if err := f.Write(stressEvent(i)); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	f.Close(nil)
	wg.Wait()

	if len(late) == 0 || len(late)%DefaultBatchSize != 0 {
		t.Fatalf("late subscriber got %d events, want a positive multiple of %d", len(late), DefaultBatchSize)
	}
	first := total - len(late)
	for i, e := range late {
		if want := stressEvent(first + i); e != want {
			t.Fatalf("late event %d = %+v, want %+v", i, e, want)
		}
	}
}

// TestFanoutDynamicChurnStress hammers the cancel-during-flush window:
// one producer streams while subscribers join and cancel continuously,
// many canceling the instant they subscribe so the producer's poll,
// the consumer's drain, and the racing send interleave every way the
// scheduler allows. Run under -race this is the memory-model check on
// the retire path; the over-release panic in sharedBatch.release is the
// refcount check. Stayers verify content integrity end to end.
func TestFanoutDynamicChurnStress(t *testing.T) {
	const total = 64 * DefaultBatchSize
	f := NewFanout(1)

	var wg sync.WaitGroup
	var churners sync.WaitGroup
	var seen atomic.Int64

	// Anchor: keeps the stream alive so ErrFanoutDone never fires.
	wg.Add(1)
	go func() {
		defer wg.Done()
		src := f.Source(0)
		defer src.Cancel()
		n := 0
		for {
			e, err := src.Next()
			if err != nil {
				if err != io.EOF {
					t.Errorf("anchor ended with %v, want io.EOF", err)
				}
				if n != total {
					t.Errorf("anchor got %d events, want %d", n, total)
				}
				return
			}
			if int(e.Time) != n%total {
				// The anchor subscribed first, so it must see the exact stream.
				t.Errorf("anchor event %d has time %d", n, e.Time)
				return
			}
			n++
			seen.Add(1)
		}
	}()

	// Churners: subscribe mid-stream, read a few (often zero) events,
	// cancel, leave.
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		churners.Add(1)
		go func(g int) {
			defer churners.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				src := f.Subscribe()
				reads := rng.Intn(3 * DefaultBatchSize)
				if rng.Intn(4) == 0 {
					reads = 0 // cancel immediately: widest race window
				}
				for i := 0; i < reads; i++ {
					if _, err := src.Next(); err != nil {
						break
					}
				}
				src.Cancel()
			}
		}(g)
	}

	for i := 0; i < total; i++ {
		if err := f.Write(stressEvent(i % total)); err != nil {
			t.Fatalf("Write %d: %v", i, err)
		}
	}
	f.Close(nil)
	close(stop)
	churners.Wait()
	wg.Wait()
	if seen.Load() != total {
		t.Fatalf("anchor saw %d events, want %d", seen.Load(), total)
	}
}
