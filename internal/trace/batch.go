package trace

import (
	"io"
	"sync"
)

// Batched pull: the hot streaming paths move events in slices instead of
// one interface call per event. BatchSource is an optional extension of
// Source; ReadBatch is the universal entry point that uses the native
// batch method when a source has one and falls back to a Next loop when
// it does not, so every consumer can batch without knowing which kind of
// source it holds.
//
// The batch contract:
//
//   - NextBatch(buf) fills a prefix of buf and returns how many events it
//     wrote. It returns n > 0 with a nil error, or n == 0 with a non-nil
//     error (io.EOF at a clean end of stream) — never both, so consumers
//     process buf[:n] unconditionally and check the error only when no
//     events arrived.
//   - A call may return fewer events than len(buf) for any reason;
//     batch boundaries carry no meaning. Splitting a stream into batches
//     differently must not change the concatenated event sequence.
//   - Errors are sticky: after a source returns an error (including
//     io.EOF), subsequent calls return an error again. The fallback
//     adapter relies on this — when a Next loop fails after partially
//     filling a batch it returns the partial batch and lets the error
//     surface on the following call.
//
// The sourcetest package holds the conformance suite that pins these
// semantics for every implementation.

// BatchSource is the optional batched extension of Source. Implementing
// it is purely an optimization: ReadBatch falls back to Next for sources
// that do not.
type BatchSource interface {
	Source
	NextBatch(buf []Event) (n int, err error)
}

// DefaultBatchSize is the event-batch capacity used by pooled batches
// and the internal prefetch buffers of batching sources. At 64 bytes an
// event, a batch is a few tens of kilobytes — big enough to amortize
// per-event call overhead into nothing, small enough to stay
// cache-friendly and keep fan-out memory bounded.
const DefaultBatchSize = 256

// ReadBatch fills buf from src and returns the number of events written,
// under the batch contract above. It dispatches to the source's native
// NextBatch when implemented.
func ReadBatch(src Source, buf []Event) (int, error) {
	if bs, ok := src.(BatchSource); ok {
		return bs.NextBatch(buf)
	}
	return nextLoop(src, buf)
}

// nextLoop is the default one-at-a-time adapter: a Next loop shaped into
// the batch contract.
func nextLoop(src Source, buf []Event) (int, error) {
	n := 0
	for n < len(buf) {
		e, err := src.Next()
		if err != nil {
			if n > 0 {
				// Sticky errors: the same failure resurfaces on the
				// next call, after the caller consumes this batch.
				return n, nil
			}
			return 0, err
		}
		buf[n] = e
		n++
	}
	return n, nil
}

// batchPool recycles event batches across stages and goroutines so the
// steady-state batched pipeline allocates nothing per batch.
var batchPool = sync.Pool{
	New: func() any {
		s := make([]Event, DefaultBatchSize)
		return &s
	},
}

// GetBatch returns a pooled event slice of length DefaultBatchSize.
// Return it with PutBatch when done.
func GetBatch() []Event {
	return *batchPool.Get().(*[]Event)
}

// PutBatch returns a batch obtained from GetBatch to the pool.
//
// Guard rails: callers routinely reslice a pooled batch (buf[:0] to
// refill it, buf[:n] after a short read), so PutBatch restores the full
// DefaultBatchSize length before pooling — GetBatch always hands out
// full-length batches. A slice whose *capacity* is not exactly
// DefaultBatchSize cannot be a whole pooled batch (it was either
// allocated elsewhere, grown by append, or carved out with a three-index
// or offset reslice), and pooling it would poison the pool with a
// short or aliased buffer; such slices are dropped for the garbage
// collector instead. Only pass slices that came from GetBatch: a
// foreign slice that happens to have capacity DefaultBatchSize but
// aliases a larger caller-owned array is indistinguishable here and
// would share that memory with the next GetBatch caller.
func PutBatch(buf []Event) {
	if cap(buf) != DefaultBatchSize {
		return
	}
	buf = buf[:DefaultBatchSize]
	batchPool.Put(&buf)
}

// NextBatch copies pending events into buf. SliceSource batches
// natively: a batch is one memcpy from the backing slice.
func (s *SliceSource) NextBatch(buf []Event) (int, error) {
	if len(buf) == 0 {
		return 0, nil // a zero-length buffer is a no-op read
	}
	if s.pos >= len(s.events) {
		return 0, io.EOF
	}
	n := copy(buf, s.events[s.pos:])
	s.pos += n
	return n, nil
}

// NextBatch decodes up to len(buf) records in one call, skipping the
// per-event interface dispatch of Next. A decode failure after a partial
// batch is held and returned by the following call, so no decoded event
// is lost and the batch contract holds.
func (r *Reader) NextBatch(buf []Event) (int, error) {
	if len(buf) == 0 {
		return 0, nil
	}
	if r.fail != nil {
		return 0, r.fail
	}
	if r.pendErr != nil {
		err := r.pendErr
		r.pendErr = nil
		return 0, r.fatal(err)
	}
	if r.version == Version2 {
		n, err := r.nextBatchV2(buf)
		return n, r.fatal(err)
	}
	n := 0
	for n < len(buf) {
		recStart := r.r.off
		kindByte, err := r.r.ReadByte()
		if err != nil {
			if err == io.EOF {
				return r.finishBatch(n, io.EOF)
			}
			return r.finishBatch(n, r.recordErr(recStart, err))
		}
		e, err := r.decodeBody(kindByte)
		if err != nil {
			return r.finishBatch(n, r.recordErr(recStart, err))
		}
		r.index++
		buf[n] = e
		n++
	}
	return n, nil
}

// finishBatch shapes a mid-batch stream end into the batch contract:
// a partial batch goes out clean and the error waits for the next call.
func (r *Reader) finishBatch(n int, err error) (int, error) {
	if n > 0 {
		r.pendErr = err
		return n, nil
	}
	return 0, r.fatal(err)
}

// nextBatchV2 serves batches straight out of the current verified
// segment: one memcpy per call in the common case.
func (r *Reader) nextBatchV2(buf []Event) (int, error) {
	for r.segPos >= len(r.seg) {
		if r.eof {
			return 0, io.EOF
		}
		if err := r.fillSegment(); err != nil {
			return 0, err
		}
	}
	n := copy(buf, r.seg[r.segPos:])
	r.segPos += n
	r.index += int64(n)
	return n, nil
}

// NextBatch drains the minimum source while it stays the minimum,
// remapping as it copies. The heap is touched only when the lead source
// changes or ends, so merging k ordered streams costs far less than one
// sift per event when runs of consecutive events come from one source —
// exactly the common case for coarse-grained shard interleavings.
func (m *MergeSource) NextBatch(buf []Event) (int, error) {
	if m.err != nil {
		return 0, m.err
	}
	if m.pending != nil {
		if _, err := m.prime(); err != nil {
			return 0, err
		}
	}
	n := 0
	for n < len(buf) {
		if len(m.items) == 0 {
			if n > 0 {
				return n, nil
			}
			return 0, io.EOF
		}
		it := &m.items[0]
		// The lead source may emit without re-heapifying while its head
		// stays ahead of the runner-up in the (time, source) order.
		runnerTime, runnerSource, haveRunner := m.runnerUp()
		for n < len(buf) {
			buf[n] = RemapIDs(it.head, m.n, it.source)
			n++
			e, err := it.src.Next()
			if err == io.EOF {
				m.popLead()
				break
			}
			if err != nil {
				m.err = err
				if n > 0 {
					return n, nil
				}
				return 0, err
			}
			it.head = e
			if haveRunner && (e.Time > runnerTime || (e.Time == runnerTime && it.source > runnerSource)) {
				m.fixLead()
				break
			}
		}
	}
	return n, nil
}

// runnerUp returns the (time, source) key of the second-smallest heap
// item — the threshold the lead source must stay under to keep emitting
// without a sift.
func (m *MergeSource) runnerUp() (t Time, source int, ok bool) {
	switch len(m.items) {
	case 0, 1:
		return 0, 0, false
	case 2:
		return m.items[1].head.Time, m.items[1].source, true
	}
	i := 1
	if m.Less(2, 1) {
		i = 2
	}
	return m.items[i].head.Time, m.items[i].source, true
}
