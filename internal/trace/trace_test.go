package trace

import (
	"bytes"
	"io"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// randomEvent produces a structurally valid event of a random kind. It is
// shared by the round-trip property tests.
func randomEvent(rng *rand.Rand, t Time) Event {
	e := Event{Time: t, Kind: Kind(rng.Intn(NumKinds) + 1)}
	switch e.Kind {
	case KindCreate, KindOpen:
		e.OpenID = OpenID(rng.Int63n(1 << 40))
		e.File = FileID(rng.Int63n(1 << 40))
		e.User = UserID(rng.Int31n(1 << 20))
		e.Mode = Mode(rng.Intn(3))
		if e.Kind == KindOpen {
			e.Size = rng.Int63n(1 << 30)
		}
	case KindClose:
		e.OpenID = OpenID(rng.Int63n(1 << 40))
		e.NewPos = rng.Int63n(1 << 30)
	case KindSeek:
		e.OpenID = OpenID(rng.Int63n(1 << 40))
		e.OldPos = rng.Int63n(1 << 30)
		e.NewPos = rng.Int63n(1 << 30)
	case KindUnlink:
		e.File = FileID(rng.Int63n(1 << 40))
	case KindTruncate:
		e.File = FileID(rng.Int63n(1 << 40))
		e.Size = rng.Int63n(1 << 30)
	case KindExec:
		e.File = FileID(rng.Int63n(1 << 40))
		e.User = UserID(rng.Int31n(1 << 20))
		e.Size = rng.Int63n(1 << 30)
	}
	return e
}

func randomTrace(seed int64, n int) []Event {
	rng := rand.New(rand.NewSource(seed))
	events := make([]Event, n)
	t := Time(0)
	for i := range events {
		t += Time(rng.Int63n(5000))
		events[i] = randomEvent(rng, t)
	}
	return events
}

func TestBinaryRoundTrip(t *testing.T) {
	events := randomTrace(1, 500)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if w.Count() != 500 {
		t.Errorf("Count = %d, want 500", w.Count())
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("round trip mismatch: got %d events", len(got))
	}
}

// Property: binary round trip preserves arbitrary valid event sequences.
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		events := randomTrace(seed, int(n))
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, e := range events {
			if w.Write(e) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.ReadAll()
		if err != nil {
			return false
		}
		if len(events) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, events)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEmptyTraceHasHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatalf("empty trace rejected: %v", err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("Next on empty trace = %v, want io.EOF", err)
	}
}

func TestBadHeader(t *testing.T) {
	for name, data := range map[string][]byte{
		"empty":      {},
		"short":      {'B', 'S'},
		"wrongMagic": {'X', 'X', 'X', 'X', 1},
		"wrongVer":   {'B', 'S', 'D', 'T', 99},
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := NewReader(bytes.NewReader(data)); err == nil {
				t.Errorf("accepted bad header")
			}
		})
	}
}

func TestTruncatedStream(t *testing.T) {
	events := randomTrace(3, 50)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Cut mid-record: any cut inside the body must produce an error, not
	// silently truncated output with no error.
	r, err := NewReader(bytes.NewReader(data[:len(data)-3]))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.ReadAll()
	if err == nil {
		t.Errorf("truncated stream read without error")
	}
}

func TestCorruptKindByte(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Event{Kind: KindUnlink, File: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[5] = 200 // corrupt the kind byte of the first record
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Errorf("corrupt kind accepted")
	}
}

func TestWriteInvalidKind(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.Write(Event{Kind: KindInvalid}); err == nil {
		t.Errorf("invalid kind accepted by writer")
	}
}

func TestTextRoundTrip(t *testing.T) {
	events := randomTrace(5, 200)
	var buf bytes.Buffer
	if err := WriteText(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("text round trip mismatch")
	}
}

func TestTextCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\n100 unlink 7\n   \n200 close 3 4096\n"
	got, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Time: 100, Kind: KindUnlink, File: 7},
		{Time: 200, Kind: KindClose, OpenID: 3, NewPos: 4096},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestParseEventErrors(t *testing.T) {
	bad := []string{
		"",
		"100",
		"abc open 1 2 3 r 0",
		"100 frobnicate 1",
		"100 open 1 2 3 q 0",    // bad mode
		"100 open 1 2 3 r",      // missing size
		"100 seek 1 2",          // missing newpos
		"100 close x 4",         // bad openid
		"100 unlink",            // missing file
		"100 truncate 5",        // missing length
		"100 execve 5 2",        // missing size
		"100 open 1 2 3 r 0 99", // extra field
	}
	for _, line := range bad {
		if _, err := ParseEvent(line); err == nil {
			t.Errorf("ParseEvent(%q) accepted", line)
		}
	}
}

func TestEventStringParses(t *testing.T) {
	events := randomTrace(9, 100)
	for _, e := range events {
		got, err := ParseEvent(e.String())
		if err != nil {
			t.Fatalf("ParseEvent(%q): %v", e.String(), err)
		}
		if got != e {
			t.Fatalf("String/Parse mismatch: %v != %v", got, e)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	events := randomTrace(11, 300)
	path := filepath.Join(t.TempDir(), "trace.bin")
	if err := WriteFile(path, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("file round trip mismatch")
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.bin")); err == nil {
		t.Errorf("missing file read without error")
	}
}

func TestCounts(t *testing.T) {
	var c Counts
	c.Add(Event{Kind: KindOpen})
	c.Add(Event{Kind: KindOpen})
	c.Add(Event{Kind: KindClose})
	c.Add(Event{Kind: KindUnlink})
	if c.Total != 4 {
		t.Errorf("Total = %d, want 4", c.Total)
	}
	if c.ByKind[KindOpen] != 2 {
		t.Errorf("open count = %d, want 2", c.ByKind[KindOpen])
	}
	if got := c.Fraction(KindOpen); got != 0.5 {
		t.Errorf("Fraction(open) = %v, want 0.5", got)
	}
	var empty Counts
	if empty.Fraction(KindOpen) != 0 {
		t.Errorf("empty Fraction should be 0")
	}
}

func TestKindAndModeStrings(t *testing.T) {
	if KindExec.String() != "execve" || KindCreate.String() != "create" {
		t.Errorf("kind names wrong: %v %v", KindExec, KindCreate)
	}
	if Kind(99).String() == "" {
		t.Errorf("unknown kind should still format")
	}
	if ReadWrite.String() != "read-write" {
		t.Errorf("mode name wrong: %v", ReadWrite)
	}
	if !ReadOnly.CanRead() || ReadOnly.CanWrite() {
		t.Errorf("ReadOnly capabilities wrong")
	}
	if WriteOnly.CanRead() || !WriteOnly.CanWrite() {
		t.Errorf("WriteOnly capabilities wrong")
	}
	if !ReadWrite.CanRead() || !ReadWrite.CanWrite() {
		t.Errorf("ReadWrite capabilities wrong")
	}
}

func TestTimeHelpers(t *testing.T) {
	if (2 * Second).Seconds() != 2 {
		t.Errorf("Seconds wrong")
	}
	if Minute != 60*Second || Hour != 60*Minute {
		t.Errorf("unit constants wrong")
	}
	if (1500 * Millisecond).String() != "1.5s" {
		t.Errorf("String = %q", (1500 * Millisecond).String())
	}
	if (20 * Minute).String() != "20m0s" {
		t.Errorf("String = %q", (20 * Minute).String())
	}
}

func TestValidatorCleanStream(t *testing.T) {
	events := []Event{
		{Time: 0, Kind: KindCreate, OpenID: 1, File: 10, User: 1, Mode: WriteOnly},
		{Time: 10, Kind: KindClose, OpenID: 1, NewPos: 4096},
		{Time: 20, Kind: KindOpen, OpenID: 2, File: 10, User: 1, Mode: ReadOnly, Size: 4096},
		{Time: 25, Kind: KindSeek, OpenID: 2, OldPos: 0, NewPos: 1024},
		{Time: 30, Kind: KindClose, OpenID: 2, NewPos: 4096},
		{Time: 40, Kind: KindUnlink, File: 10},
	}
	errs, unclosed := Validate(events)
	if len(errs) != 0 {
		t.Fatalf("clean stream got errors: %v", errs)
	}
	if unclosed != 0 {
		t.Errorf("unclosed = %d, want 0", unclosed)
	}
}

func TestValidatorCatchesErrors(t *testing.T) {
	cases := map[string][]Event{
		"timeBackwards": {
			{Time: 100, Kind: KindUnlink, File: 1},
			{Time: 50, Kind: KindUnlink, File: 2},
		},
		"closeUnknown": {
			{Time: 0, Kind: KindClose, OpenID: 9, NewPos: 0},
		},
		"seekUnknown": {
			{Time: 0, Kind: KindSeek, OpenID: 9, OldPos: 0, NewPos: 10},
		},
		"openIDReuse": {
			{Time: 0, Kind: KindOpen, OpenID: 1, File: 1, Mode: ReadOnly},
			{Time: 1, Kind: KindOpen, OpenID: 1, File: 2, Mode: ReadOnly},
		},
		"createNonzeroSize": {
			{Time: 0, Kind: KindCreate, OpenID: 1, File: 1, Mode: WriteOnly, Size: 5},
		},
		"closeBeforePos": {
			{Time: 0, Kind: KindOpen, OpenID: 1, File: 1, Mode: ReadOnly, Size: 100},
			{Time: 1, Kind: KindSeek, OpenID: 1, OldPos: 50, NewPos: 80},
			{Time: 2, Kind: KindClose, OpenID: 1, NewPos: 10},
		},
		"seekBackwardOldPos": {
			{Time: 0, Kind: KindOpen, OpenID: 1, File: 1, Mode: ReadOnly, Size: 100},
			{Time: 1, Kind: KindSeek, OpenID: 1, OldPos: 0, NewPos: 80},
			{Time: 2, Kind: KindSeek, OpenID: 1, OldPos: 40, NewPos: 90},
		},
		"negativeTruncate": {
			{Time: 0, Kind: KindTruncate, File: 1, Size: -1},
		},
		"invalidKind": {
			{Time: 0, Kind: Kind(99)},
		},
		"badMode": {
			{Time: 0, Kind: KindOpen, OpenID: 1, File: 1, Mode: Mode(7)},
		},
	}
	for name, events := range cases {
		t.Run(name, func(t *testing.T) {
			errs, _ := Validate(events)
			if len(errs) == 0 {
				t.Errorf("validator missed %s", name)
			}
		})
	}
}

func TestValidatorUnclosed(t *testing.T) {
	events := []Event{
		{Time: 0, Kind: KindOpen, OpenID: 1, File: 1, Mode: ReadOnly},
		{Time: 1, Kind: KindOpen, OpenID: 2, File: 2, Mode: ReadOnly},
		{Time: 2, Kind: KindClose, OpenID: 1, NewPos: 0},
	}
	errs, unclosed := Validate(events)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if unclosed != 1 {
		t.Errorf("unclosed = %d, want 1", unclosed)
	}
}

func TestValidatorErrorCap(t *testing.T) {
	v := NewValidator(3)
	for i := 0; i < 10; i++ {
		v.Check(Event{Time: 0, Kind: KindClose, OpenID: OpenID(i)})
	}
	if len(v.Errs()) != 3 {
		t.Errorf("error cap not applied: %d errors", len(v.Errs()))
	}
}

// TestValidatorFirstBad: the first failing event is reported verbatim
// and stays pinned while later events also fail.
func TestValidatorFirstBad(t *testing.T) {
	v := NewValidator(1)
	good := Event{Time: 0, Kind: KindOpen, OpenID: 1, File: 9, Mode: ReadOnly, Size: 64}
	bad := Event{Time: 1, Kind: KindClose, OpenID: 77, NewPos: 123}
	v.Check(good)
	if v.FirstBad() != nil {
		t.Fatalf("FirstBad set on a clean prefix: %v", v.FirstBad())
	}
	v.Check(bad)
	v.Check(Event{Time: 2, Kind: KindSeek, OpenID: 88}) // also bad, beyond the cap
	if fb := v.FirstBad(); fb == nil || *fb != bad {
		t.Fatalf("FirstBad = %v, want %v", fb, bad)
	}
}

func TestValidatorStats(t *testing.T) {
	v := NewValidator(0)
	events := []Event{
		{Time: 0, Kind: KindOpen, OpenID: 1, File: 1, Mode: ReadOnly, Size: 10},
		{Time: 1, Kind: KindSeek, OpenID: 1, OldPos: 0, NewPos: 5},
		{Time: 2, Kind: KindClose, OpenID: 1, NewPos: 10},
		{Time: 3, Kind: KindUnlink, File: 1},
		{Time: 4, Kind: KindUnlink, File: 2},
		{Time: 5, Kind: Kind(99)}, // invalid, still counted in Total
	}
	for _, e := range events {
		v.Check(e)
	}
	c := v.Stats()
	if c.Total != int64(len(events)) {
		t.Fatalf("Total = %d, want %d", c.Total, len(events))
	}
	if c.ByKind[KindUnlink] != 2 || c.ByKind[KindOpen] != 1 || c.ByKind[KindSeek] != 1 || c.ByKind[KindClose] != 1 {
		t.Fatalf("per-kind counts wrong: %+v", c.ByKind)
	}
}
