package trace

import "fmt"

// DefaultMaxForwardJump is the largest forward time step RecoverSource
// accepts before treating the timestamp as corrupt. The workload's
// daemons fire every few minutes, so a clean trace never goes quiet for
// an hour; a jump that large is a damaged varint, and rewriting it (to
// the previous time) stops one flipped high bit from dragging every
// subsequent clamped timestamp along with it.
const DefaultMaxForwardJump = Hour

// RepairStats is the error budget of a RecoverSource pass: exactly what
// the repair cost. The accounting identity
//
//	Emitted == Events - Dropped + Synthesized
//
// always holds, so downstream consumers can reconcile their event counts
// against the damage report.
type RepairStats struct {
	// Events is the number of events received from the wrapped source.
	Events int64
	// Emitted is the number of events passed downstream.
	Emitted int64
	// Dropped counts events discarded as unrepairable: invalid kinds,
	// close/seek on handles that never opened, unlink/truncate of files
	// the stream never introduced.
	Dropped int64
	// Synthesized counts events invented to restore invariants: a Close
	// for an orphaned Open whose id is about to be reused.
	Synthesized int64
	// Rewritten counts events with at least one field repaired in place
	// (clamped times, clamped positions, zeroed sizes, defaulted modes).
	Rewritten int64
	// EstBytesLost estimates the transferred bytes that can no longer be
	// attributed: the final positions carried by dropped unknown-handle
	// closes. It is a crude upper bound — the lost open may have covered
	// some of those bytes before the damage.
	EstBytesLost int64
}

// Zero reports whether the pass changed nothing (the clean-stream
// no-op guarantee).
func (s RepairStats) Zero() bool {
	return s.Dropped == 0 && s.Synthesized == 0 && s.Rewritten == 0
}

// String renders the budget for command-line damage reports.
func (s RepairStats) String() string {
	return fmt.Sprintf("%d events: %d dropped, %d synthesized, %d rewritten, ~%d bytes unattributable",
		s.Events, s.Dropped, s.Synthesized, s.Rewritten, s.EstBytesLost)
}

// RecoverSource is a self-healing repair pass over a damaged event
// stream. It enforces every Validator invariant by local repair rather
// than rejection, so downstream analyses always see a well-formed trace:
//
//   - backward time steps are clamped to the previous time, and forward
//     jumps beyond MaxForwardJump (a flipped high bit in a time varint)
//     are pulled back to it;
//   - an Open or Create reusing a live open id first gets a synthesized
//     Close for the orphaned open, at its last known position;
//   - Close and Seek on ids that never opened are dropped (their
//     transfers are unattributable — counted in EstBytesLost);
//   - Unlink and Truncate of files the stream never introduced are
//     dropped (damage that invents file ids must not create phantom
//     files in lifetime analyses);
//   - negative sizes and positions are zeroed, invalid modes default to
//     read-only, position regressions are clamped to the last known
//     position, and a Create claiming a nonzero size becomes size 0.
//
// Over an undamaged stream the pass is an exact no-op: every event
// passes through unchanged and Stats().Zero() is true.
//
// What repair cannot recover: the transfers of a dropped record are
// gone, synthesized closes bill an orphan's bytes at the wrong time,
// and a clamped timestamp shifts an event between analysis intervals.
// RepairStats quantifies the first; the loss-sensitivity sweep
// (fsreport -degrade) quantifies the rest.
type RecoverSource struct {
	// MaxForwardJump is the forward time-step tolerance; fields may be
	// set before the first Next call. Zero means DefaultMaxForwardJump.
	MaxForwardJump Time

	src     Source
	stats   RepairStats
	open    map[OpenID]*recOpen
	seen    map[FileID]struct{}
	prev    Time
	started bool
	hold    Event // the open that follows a synthesized close
	hasHold bool

	// in is the batched input buffer: raw events are pulled from src a
	// batch at a time and repaired out of the buffer, so the repair pass
	// adds no per-event interface calls of its own.
	in    []Event
	inPos int
	inN   int
}

type recOpen struct {
	file FileID
	pos  int64
}

// NewRecoverSource wraps src in a repair pass.
func NewRecoverSource(src Source) *RecoverSource {
	return &RecoverSource{
		MaxForwardJump: DefaultMaxForwardJump,
		src:            src,
		open:           make(map[OpenID]*recOpen),
		seen:           make(map[FileID]struct{}),
	}
}

// Stats returns the repair budget so far. It is complete once Next has
// returned io.EOF.
func (r *RecoverSource) Stats() RepairStats { return r.stats }

// pull returns the next raw event from the wrapped source through the
// batched input buffer.
func (r *RecoverSource) pull() (Event, error) {
	if r.inPos >= r.inN {
		if r.in == nil {
			r.in = make([]Event, DefaultBatchSize)
		}
		n, err := ReadBatch(r.src, r.in)
		if n == 0 {
			return Event{}, err
		}
		r.inN, r.inPos = n, 0
	}
	e := r.in[r.inPos]
	r.inPos++
	return e, nil
}

// Next returns the next repaired event.
func (r *RecoverSource) Next() (Event, error) {
	if r.hasHold {
		r.hasHold = false
		r.stats.Emitted++
		return r.hold, nil
	}
	for {
		e, err := r.pull()
		if err != nil {
			// EOF included: opens legitimately outlive a live trace, so
			// no closes are synthesized at end of stream.
			return Event{}, err
		}
		r.stats.Events++
		e, emit, synth := r.repair(e)
		if !emit {
			r.stats.Dropped++
			continue
		}
		if synth != nil {
			r.hold, r.hasHold = e, true
			r.stats.Synthesized++
			r.stats.Emitted++
			return *synth, nil
		}
		r.stats.Emitted++
		return e, nil
	}
}

// NextBatch repairs a batch of events in one call. A synthesized close
// that lands on a full batch is held for the next call, so batch
// boundaries never change what is emitted.
func (r *RecoverSource) NextBatch(buf []Event) (int, error) {
	n := 0
	if n < len(buf) && r.hasHold {
		r.hasHold = false
		r.stats.Emitted++
		buf[n] = r.hold
		n++
	}
	for n < len(buf) {
		e, err := r.pull()
		if err != nil {
			if n > 0 {
				return n, nil
			}
			return 0, err
		}
		r.stats.Events++
		e, emit, synth := r.repair(e)
		if !emit {
			r.stats.Dropped++
			continue
		}
		if synth != nil {
			r.stats.Synthesized++
			r.stats.Emitted++
			buf[n] = *synth
			n++
			if n == len(buf) {
				r.hold, r.hasHold = e, true
				return n, nil
			}
		}
		r.stats.Emitted++
		buf[n] = e
		n++
	}
	return n, nil
}

// repair applies the local repairs to one event. It returns the repaired
// event, whether to emit it, and an optional synthesized event to emit
// first.
func (r *RecoverSource) repair(e Event) (_ Event, emit bool, synth *Event) {
	if !e.Kind.Valid() {
		return e, false, nil
	}

	rewritten := false
	maxJump := r.MaxForwardJump
	if maxJump <= 0 {
		maxJump = DefaultMaxForwardJump
	}
	if r.started && (e.Time < r.prev || e.Time > r.prev+maxJump) {
		e.Time = r.prev
		rewritten = true
	}

	switch e.Kind {
	case KindCreate, KindOpen:
		if e.Size < 0 || (e.Kind == KindCreate && e.Size != 0) {
			e.Size = 0
			rewritten = true
		}
		if e.Mode != ReadOnly && e.Mode != WriteOnly && e.Mode != ReadWrite {
			e.Mode = ReadOnly
			rewritten = true
		}
		if st, live := r.open[e.OpenID]; live {
			// The id is being reused while open: the original open's
			// close was lost. Close it where we last saw it so the pair
			// stays matched, then let the new open through.
			synth = &Event{
				Time:   e.Time,
				Kind:   KindClose,
				OpenID: e.OpenID,
				NewPos: st.pos,
			}
		}
		r.open[e.OpenID] = &recOpen{file: e.File}
		r.seen[e.File] = struct{}{}
	case KindClose:
		st, ok := r.open[e.OpenID]
		if !ok {
			if e.NewPos > 0 {
				r.stats.EstBytesLost += e.NewPos
			}
			return e, false, nil
		}
		if e.NewPos < st.pos {
			e.NewPos = st.pos
			rewritten = true
		}
		delete(r.open, e.OpenID)
	case KindSeek:
		st, ok := r.open[e.OpenID]
		if !ok {
			return e, false, nil
		}
		if e.OldPos < 0 {
			e.OldPos = 0
			rewritten = true
		}
		if e.NewPos < 0 {
			e.NewPos = 0
			rewritten = true
		}
		if e.OldPos < st.pos {
			e.OldPos = st.pos
			rewritten = true
		}
		st.pos = e.NewPos
	case KindUnlink:
		if _, ok := r.seen[e.File]; !ok {
			return e, false, nil
		}
	case KindTruncate:
		if _, ok := r.seen[e.File]; !ok {
			return e, false, nil
		}
		if e.Size < 0 {
			e.Size = 0
			rewritten = true
		}
	case KindExec:
		if e.Size < 0 {
			e.Size = 0
			rewritten = true
		}
		r.seen[e.File] = struct{}{}
	}

	if rewritten {
		r.stats.Rewritten++
	}
	r.prev = e.Time
	r.started = true
	return e, true, synth
}

// Recover repairs a whole in-memory trace, returning the repaired events
// and the budget.
func Recover(events []Event) ([]Event, RepairStats) {
	r := NewRecoverSource(NewSliceSource(events))
	out, err := ReadSource(r)
	if err != nil {
		// A SliceSource never fails.
		panic(err)
	}
	return out, r.Stats()
}
