package trace

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

// encodeV2 writes events in the version-2 framing with the given
// checkpoint interval.
func encodeV2(t testing.TB, events []Event, interval int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriterV2(&buf, interval)
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func decodeAll(t *testing.T, data []byte) ([]Event, SkipStats) {
	t.Helper()
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	events, err := r.ReadAll()
	if err != nil {
		t.Fatalf("v2 reader returned a decode error (it should self-heal): %v", err)
	}
	return events, r.Skipped()
}

// TestV2RoundTripMatchesV1 is the format half of the round-trip
// acceptance criterion: a v2 write→read of an undamaged stream is
// event-identical to the v1 encoding of the same events.
func TestV2RoundTripMatchesV1(t *testing.T) {
	events := randomTrace(11, 5000)
	for _, interval := range []int{1, 7, 100, 4096, 100000} {
		data := encodeV2(t, events, interval)
		got, skip := decodeAll(t, data)
		if !skip.Zero() {
			t.Fatalf("interval %d: undamaged stream reported skips: %v", interval, skip)
		}
		if len(got) != len(events) {
			t.Fatalf("interval %d: %d events became %d", interval, len(events), len(got))
		}
		for i := range got {
			if got[i] != events[i] {
				t.Fatalf("interval %d: event %d changed: %+v -> %+v", interval, i, events[i], got[i])
			}
		}
	}

	// And the v1 encoding decodes to the same events.
	var v1 bytes.Buffer
	w := NewWriter(&v1)
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	viaV1, _ := decodeAll(t, v1.Bytes())
	viaV2, _ := decodeAll(t, encodeV2(t, events, 512))
	if len(viaV1) != len(viaV2) {
		t.Fatalf("v1 decoded %d events, v2 %d", len(viaV1), len(viaV2))
	}
	for i := range viaV1 {
		if viaV1[i] != viaV2[i] {
			t.Fatalf("event %d differs between versions: %+v vs %+v", i, viaV1[i], viaV2[i])
		}
	}
}

func TestV2EmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriterV2(&buf, 0)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, skip := decodeAll(t, buf.Bytes())
	if len(got) != 0 || !skip.Zero() {
		t.Fatalf("empty v2 trace decoded to %d events, skips %v", len(got), skip)
	}
}

// TestV2DoubleFlush: a Flush right after an interval checkpoint must not
// confuse the reader.
func TestV2DoubleFlush(t *testing.T) {
	events := randomTrace(3, 64)
	var buf bytes.Buffer
	w := NewWriterV2(&buf, 64) // interval divides the count exactly
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil { // second flush: no new checkpoint
		t.Fatal(err)
	}
	got, skip := decodeAll(t, buf.Bytes())
	if len(got) != len(events) || !skip.Zero() {
		t.Fatalf("decoded %d/%d events, skips %v", len(got), len(events), skip)
	}
}

// segmentOf maps each event index to its segment number for a given
// interval.
func segmentOf(i, interval int) int { return i / interval }

// TestV2BitFlipLosesOneSegment is the core resilience property: flip any
// single bit anywhere in the stream and the reader still terminates,
// never panics, emits no event from the damaged segment, and emits every
// event of every other segment (when the header and resync machinery
// survive the flip).
func TestV2BitFlipLosesOneSegment(t *testing.T) {
	const interval = 50
	events := randomTrace(13, 1000)
	valid := encodeV2(t, events, interval)
	rng := rand.New(rand.NewSource(17))

	for trial := 0; trial < 2000; trial++ {
		data := append([]byte(nil), valid...)
		pos := 5 + rng.Intn(len(data)-5) // beyond the header
		data[pos] ^= 1 << rng.Intn(8)

		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			continue
		}
		got, err := r.ReadAll()
		if err != nil {
			t.Fatalf("trial %d: v2 reader errored instead of healing: %v", trial, err)
		}
		skip := r.Skipped()

		// Every emitted event must be one of the original events, in
		// order, and no two segments may be lost by one flipped bit
		// (one segment plus, at worst, nothing else: a flip in a
		// checkpoint loses only the segment it seals).
		j := 0
		for _, e := range got {
			for j < len(events) && events[j] != e {
				j++
			}
			if j == len(events) {
				t.Fatalf("trial %d (flip at %d): emitted event %+v not in the original order", trial, pos, e)
			}
			j++
		}
		lost := len(events) - len(got)
		if lost > 2*interval {
			t.Fatalf("trial %d (flip at %d): lost %d events to a single bit flip (> 2 segments)", trial, pos, lost)
		}
		if lost > 0 && skip.Zero() {
			t.Fatalf("trial %d (flip at %d): lost %d events but SkipStats is zero", trial, pos, lost)
		}
		// Lost events must be contiguous segments: the emitted stream is
		// the original minus whole segments.
		missing := map[int]bool{}
		j = 0
		for _, e := range got {
			for events[j] != e {
				missing[segmentOf(j, interval)] = true
				j++
			}
			j++
		}
		for ; j < len(events); j++ {
			missing[segmentOf(j, interval)] = true
		}
		for _, e := range got {
			idx := -1
			for k := range events {
				if events[k] == e {
					idx = k
					break
				}
			}
			if idx >= 0 && missing[segmentOf(idx, interval)] {
				// An event from a "missing" segment was emitted — only
				// possible if the same Event value appears twice; verify
				// by exact positional replay instead.
				verifyPositional(t, trial, pos, events, got, interval)
				break
			}
		}
	}
}

// verifyPositional re-checks the one-segment-loss property by aligning
// got against events positionally (greedy, in order).
func verifyPositional(t *testing.T, trial, pos int, events, got []Event, interval int) {
	t.Helper()
	j := 0
	for _, e := range got {
		for j < len(events) && events[j] != e {
			j++
		}
		if j == len(events) {
			t.Fatalf("trial %d (flip at %d): emitted events not a subsequence of the original", trial, pos)
		}
		j++
	}
}

// TestV2GarbageRegionResync overwrites a whole region with random bytes:
// the reader must resync at the next checkpoint and report the skip.
func TestV2GarbageRegionResync(t *testing.T) {
	const interval = 100
	events := randomTrace(19, 2000)
	valid := encodeV2(t, events, interval)
	rng := rand.New(rand.NewSource(23))

	for trial := 0; trial < 100; trial++ {
		data := append([]byte(nil), valid...)
		start := 5 + rng.Intn(len(data)/2)
		n := 1 + rng.Intn(200)
		if start+n > len(data) {
			n = len(data) - start
		}
		rng.Read(data[start : start+n])

		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			continue
		}
		got, err := r.ReadAll()
		if err != nil {
			t.Fatalf("trial %d: reader errored: %v", trial, err)
		}
		if len(got) == len(events) {
			continue // the garbage happened to leave everything intact
		}
		skip := r.Skipped()
		if skip.Zero() {
			t.Fatalf("trial %d: lost %d events, zero SkipStats", trial, len(events)-len(got))
		}
		verifyPositional(t, trial, start, events, got, interval)
	}
}

// TestV2TruncationDropsUnverifiedTail: cutting the stream anywhere must
// never emit events past the last intact checkpoint, and the dropped
// tail must be accounted for.
func TestV2TruncationDropsUnverifiedTail(t *testing.T) {
	const interval = 64
	events := randomTrace(29, 1000)
	valid := encodeV2(t, events, interval)

	// A cut landing exactly after a checkpoint is indistinguishable from a
	// complete file, so zero SkipStats is correct there. Record-encoding is
	// prefix-stable and Flush seals only non-empty segments, so encoding
	// the first k·interval events reproduces the byte prefix ending at the
	// k-th clean boundary.
	cleanBoundary := map[int]bool{}
	for k := 0; k <= len(events); k += interval {
		cleanBoundary[len(encodeV2(t, events[:k], interval))] = true
	}

	for cut := 5; cut <= len(valid); cut += 7 {
		r, err := NewReader(bytes.NewReader(valid[:cut]))
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.ReadAll()
		if err != nil {
			t.Fatalf("cut %d: reader errored: %v", cut, err)
		}
		if len(got)%interval != 0 && len(got) != len(events) {
			t.Fatalf("cut %d: emitted %d events — a partial, unverified segment leaked", cut, len(got))
		}
		for i := range got {
			if got[i] != events[i] {
				t.Fatalf("cut %d: event %d corrupted: %+v", cut, i, got[i])
			}
		}
		if len(got) < len(events) && r.Skipped().Zero() && !cleanBoundary[cut] {
			t.Fatalf("cut %d: lost %d events with zero SkipStats", cut, len(events)-len(got))
		}
	}
}

// TestV2SkipRecordEstimate: with checkpoints intact around a damaged
// segment, the skipped-record estimate is exact.
func TestV2SkipRecordEstimate(t *testing.T) {
	const interval = 100
	events := randomTrace(31, 1000)
	valid := encodeV2(t, events, interval)

	// Find a byte around the middle of segment 4 and break it hard
	// (invalid kind at a record boundary decodes as garbage somewhere).
	data := append([]byte(nil), valid...)
	pos := len(data) * 45 / 100
	for i := 0; i < 8; i++ {
		data[pos+i] = 0x00
	}
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	skip := r.Skipped()
	lost := int64(len(events) - len(got))
	if lost == 0 {
		t.Skip("damage fell into slack bytes")
	}
	if skip.Records != lost {
		t.Fatalf("lost %d events, estimated %d (stats %v)", lost, skip.Records, skip)
	}
	if skip.Segments == 0 || skip.Bytes == 0 {
		t.Fatalf("implausible stats for real damage: %v", skip)
	}
}

// TestReaderErrorContext: v1 decode errors carry the record index and
// byte offset (satellite: actionable corrupt-input reports).
func TestReaderErrorContext(t *testing.T) {
	events := randomTrace(37, 10)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-1] = 0xFF // make the tail undecodable... may still decode; truncate instead
	r, err := NewReader(bytes.NewReader(data[:len(data)-2]))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.ReadAll()
	if err == nil {
		t.Fatal("truncated v1 stream fully decoded")
	}
	msg := err.Error()
	if !bytes.Contains([]byte(msg), []byte("record ")) || !bytes.Contains([]byte(msg), []byte("at offset ")) {
		t.Fatalf("decode error lacks position context: %q", msg)
	}
	if !errors2Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncation not reported as unexpected EOF: %v", err)
	}
}

// errors2Is avoids importing errors twice under a different name in this
// file's minimal import set.
func errors2Is(err, target error) bool {
	for err != nil {
		if err == target {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
