package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text trace format is one event per line, whitespace-separated, with
// positional fields per kind:
//
//	<time_ms> create   <openid> <fileid> <userid> <mode> <size>
//	<time_ms> open     <openid> <fileid> <userid> <mode> <size>
//	<time_ms> close    <openid> <finalpos>
//	<time_ms> seek     <openid> <oldpos> <newpos>
//	<time_ms> unlink   <fileid>
//	<time_ms> truncate <fileid> <newlen>
//	<time_ms> execve   <fileid> <userid> <size>
//
// where <mode> is one of r, w, rw. Blank lines and lines starting with '#'
// are ignored on input. The format is for human inspection and tests; the
// binary format is the interchange format.

func modeToken(m Mode) string {
	switch m {
	case ReadOnly:
		return "r"
	case WriteOnly:
		return "w"
	case ReadWrite:
		return "rw"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

func parseModeToken(s string) (Mode, error) {
	switch s {
	case "r":
		return ReadOnly, nil
	case "w":
		return WriteOnly, nil
	case "rw":
		return ReadWrite, nil
	}
	return 0, fmt.Errorf("trace: bad mode %q", s)
}

func formatEvent(e Event) string {
	switch e.Kind {
	case KindCreate, KindOpen:
		return fmt.Sprintf("%d %s %d %d %d %s %d",
			e.Time, e.Kind, e.OpenID, e.File, e.User, modeToken(e.Mode), e.Size)
	case KindClose:
		return fmt.Sprintf("%d close %d %d", e.Time, e.OpenID, e.NewPos)
	case KindSeek:
		return fmt.Sprintf("%d seek %d %d %d", e.Time, e.OpenID, e.OldPos, e.NewPos)
	case KindUnlink:
		return fmt.Sprintf("%d unlink %d", e.Time, e.File)
	case KindTruncate:
		return fmt.Sprintf("%d truncate %d %d", e.Time, e.File, e.Size)
	case KindExec:
		return fmt.Sprintf("%d execve %d %d %d", e.Time, e.File, e.User, e.Size)
	}
	return fmt.Sprintf("%d %s", e.Time, e.Kind)
}

// ParseEvent parses one line of the text format.
func ParseEvent(line string) (Event, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Event{}, fmt.Errorf("trace: short line %q", line)
	}
	ms, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return Event{}, fmt.Errorf("trace: bad time in %q: %v", line, err)
	}
	e := Event{Time: Time(ms)}
	args := fields[2:]
	n := func(i int) (int64, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("trace: missing field %d in %q", i, line)
		}
		return strconv.ParseInt(args[i], 10, 64)
	}
	need := func(want int) error {
		if len(args) != want {
			return fmt.Errorf("trace: %s event needs %d fields, got %d in %q", fields[1], want, len(args), line)
		}
		return nil
	}
	switch fields[1] {
	case "create", "open":
		if fields[1] == "create" {
			e.Kind = KindCreate
		} else {
			e.Kind = KindOpen
		}
		if err := need(5); err != nil {
			return Event{}, err
		}
		open, err1 := n(0)
		file, err2 := n(1)
		user, err3 := n(2)
		size, err4 := n(4)
		mode, err5 := parseModeToken(args[3])
		for _, err := range []error{err1, err2, err3, err4, err5} {
			if err != nil {
				return Event{}, err
			}
		}
		e.OpenID, e.File, e.User, e.Mode, e.Size = OpenID(open), FileID(file), UserID(user), mode, size
	case "close":
		e.Kind = KindClose
		if err := need(2); err != nil {
			return Event{}, err
		}
		open, err1 := n(0)
		pos, err2 := n(1)
		if err1 != nil || err2 != nil {
			return Event{}, fmt.Errorf("trace: bad close %q", line)
		}
		e.OpenID, e.NewPos = OpenID(open), pos
	case "seek":
		e.Kind = KindSeek
		if err := need(3); err != nil {
			return Event{}, err
		}
		open, err1 := n(0)
		oldPos, err2 := n(1)
		newPos, err3 := n(2)
		if err1 != nil || err2 != nil || err3 != nil {
			return Event{}, fmt.Errorf("trace: bad seek %q", line)
		}
		e.OpenID, e.OldPos, e.NewPos = OpenID(open), oldPos, newPos
	case "unlink":
		e.Kind = KindUnlink
		if err := need(1); err != nil {
			return Event{}, err
		}
		file, err := n(0)
		if err != nil {
			return Event{}, err
		}
		e.File = FileID(file)
	case "truncate":
		e.Kind = KindTruncate
		if err := need(2); err != nil {
			return Event{}, err
		}
		file, err1 := n(0)
		size, err2 := n(1)
		if err1 != nil || err2 != nil {
			return Event{}, fmt.Errorf("trace: bad truncate %q", line)
		}
		e.File, e.Size = FileID(file), size
	case "execve":
		e.Kind = KindExec
		if err := need(3); err != nil {
			return Event{}, err
		}
		file, err1 := n(0)
		user, err2 := n(1)
		size, err3 := n(2)
		if err1 != nil || err2 != nil || err3 != nil {
			return Event{}, fmt.Errorf("trace: bad execve %q", line)
		}
		e.File, e.User, e.Size = FileID(file), UserID(user), size
	default:
		return Event{}, fmt.Errorf("trace: unknown event kind %q", fields[1])
	}
	return e, nil
}

// WriteText writes events in the text format, one per line.
func WriteText(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		if _, err := bw.WriteString(formatEvent(e)); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses a text-format trace. Blank lines and '#' comments are
// skipped.
func ReadText(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := ParseEvent(line)
		if err != nil {
			return out, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, e)
	}
	return out, sc.Err()
}
