package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// fuzzEvents maps arbitrary fuzz bytes onto a stream of events, 9 bytes
// per event, deliberately covering invalid kinds, out-of-range modes,
// negative sizes and positions, and non-monotonic times — the full
// damage space the recovery layer claims to repair.
func fuzzEvents(data []byte) []Event {
	var evs []Event
	var now Time
	for ; len(data) >= 9; data = data[9:] {
		now += Time(int8(data[0])) * Second // jitters backward too
		evs = append(evs, Event{
			Time:   now,
			Kind:   Kind(data[1] % 12), // includes invalid kinds
			OpenID: OpenID(data[2] % 8),
			File:   FileID(data[3] % 16),
			User:   UserID(data[4] % 4),
			Mode:   Mode(data[5] % 6), // includes invalid modes
			Size:   int64(int8(data[6])) * 512,
			OldPos: int64(int8(data[7])) * 512,
			NewPos: int64(int8(data[8])) * 512,
		})
	}
	return evs
}

// FuzzRecoverSource is the repair layer's core guarantee under fuzz:
// whatever garbage goes in, Recover never panics, its accounting
// identity holds exactly, and the repaired stream always passes the
// validator with zero errors.
func FuzzRecoverSource(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{5, 1, 1, 7, 0, 2, 1, 0, 1})                         // one open
	f.Add([]byte{5, 2, 1, 7, 0, 0, 0, 0, 1})                         // orphaned close
	f.Add(bytes.Repeat([]byte{1, 11, 3, 3, 3, 5, 255, 255, 255}, 4)) // invalid kinds
	f.Add(bytes.Repeat([]byte{255, 0, 1, 7, 0, 2, 1, 0, 1}, 3))      // time runs backward, id reuse
	f.Fuzz(func(t *testing.T, data []byte) {
		in := fuzzEvents(data)
		out, st := Recover(in)
		if st.Events != int64(len(in)) || st.Emitted != int64(len(out)) {
			t.Fatalf("stats disagree with slices: %+v for %d in, %d out", st, len(in), len(out))
		}
		if st.Emitted != st.Events-st.Dropped+st.Synthesized {
			t.Fatalf("accounting identity broken: %+v", st)
		}
		if errs, _ := Validate(out); len(errs) > 0 {
			t.Fatalf("repaired stream fails validation: %v", errs[0])
		}
	})
}

// FuzzCheckpointReader feeds arbitrary bytes to the version-2 decoder:
// it must never panic, must terminate, and whatever events it does
// accept must survive a v2 re-encode/re-decode round trip with zero
// skips — verified segments are real data, not artifacts of the damage.
func FuzzCheckpointReader(f *testing.F) {
	events := []Event{
		{Time: 10, Kind: KindCreate, OpenID: 1, File: 7, User: 3, Mode: WriteOnly},
		{Time: 20, Kind: KindSeek, OpenID: 1, OldPos: 0, NewPos: 4096},
		{Time: 30, Kind: KindClose, OpenID: 1, NewPos: 8192},
		{Time: 30, Kind: KindOpen, OpenID: 2, File: 7, User: 3, Mode: ReadOnly, Size: 8192},
		{Time: 45, Kind: KindClose, OpenID: 2, NewPos: 8192},
		{Time: 50, Kind: KindExec, File: 9, User: 3, Size: 20480},
		{Time: 60, Kind: KindTruncate, File: 7, Size: 100},
		{Time: 70, Kind: KindUnlink, File: 7},
	}
	var valid bytes.Buffer
	w := NewWriterV2(&valid, 3)
	for _, e := range events {
		if err := w.Write(e); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:5])                    // header only
	f.Add(valid.Bytes()[:len(valid.Bytes())-3]) // truncated mid-checkpoint
	flipped := append([]byte(nil), valid.Bytes()...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	garbage := append([]byte(nil), valid.Bytes()[:12]...)
	garbage = append(garbage, bytes.Repeat([]byte{0xFF, 'B', 'S'}, 10)...)
	garbage = append(garbage, valid.Bytes()[12:]...)
	f.Add(garbage)
	f.Add([]byte("BSDT"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var got []Event
		for {
			e, err := r.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return // v1 streams may still reject mid-stream
			}
			got = append(got, e)
		}
		sk := r.Skipped()
		if sk.Bytes < 0 || sk.Records < 0 || sk.Segments < 0 {
			t.Fatalf("negative skip accounting: %+v", sk)
		}

		// Whatever survived verification must round-trip cleanly through
		// the v2 framing.
		var buf bytes.Buffer
		w := NewWriterV2(&buf, 3)
		for _, e := range got {
			if err := w.Write(e); err != nil {
				t.Fatalf("re-encoding accepted event %+v: %v", e, err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r2, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		back, err := r2.ReadAll()
		if err != nil {
			t.Fatalf("re-decoding: %v", err)
		}
		if !r2.Skipped().Zero() {
			t.Fatalf("round trip reported skips: %+v", r2.Skipped())
		}
		if len(back) != len(got) {
			t.Fatalf("round trip: %d events became %d", len(got), len(back))
		}
		for i := range got {
			if back[i] != got[i] {
				t.Fatalf("round trip changed event %d: %+v -> %+v", i, got[i], back[i])
			}
		}
	})
}
