package trace

import (
	"reflect"
	"testing"
)

// cleanTrace is a small hand-built trace satisfying every Validator
// invariant, exercising all seven kinds.
func cleanTrace() []Event {
	return []Event{
		{Time: 0, Kind: KindCreate, OpenID: 1, File: 10, User: 5, Mode: WriteOnly},
		{Time: 10, Kind: KindOpen, OpenID: 2, File: 11, User: 5, Mode: ReadOnly, Size: 4096},
		{Time: 20, Kind: KindSeek, OpenID: 2, OldPos: 100, NewPos: 2048},
		{Time: 30, Kind: KindClose, OpenID: 1, NewPos: 512},
		{Time: 40, Kind: KindExec, File: 12, User: 5, Size: 24576},
		{Time: 50, Kind: KindSeek, OpenID: 2, OldPos: 2048, NewPos: 0},
		{Time: 60, Kind: KindClose, OpenID: 2, NewPos: 4096},
		{Time: 70, Kind: KindTruncate, File: 10, Size: 256},
		{Time: 80, Kind: KindUnlink, File: 10},
		{Time: 90, Kind: KindOpen, OpenID: 3, File: 11, User: 6, Mode: ReadWrite, Size: 4096},
		// Left open at the end of the trace, like a live system.
	}
}

// TestRecoverCleanNoOp is the repair half of the round-trip acceptance
// criterion: over an undamaged stream the pass changes nothing.
func TestRecoverCleanNoOp(t *testing.T) {
	in := cleanTrace()
	if errs, _ := Validate(in); len(errs) != 0 {
		t.Fatalf("test fixture is not clean: %v", errs)
	}
	out, stats := Recover(in)
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("clean trace changed:\n in: %v\nout: %v", in, out)
	}
	if !stats.Zero() {
		t.Fatalf("clean trace produced repairs: %v", stats)
	}
	if stats.Events != int64(len(in)) || stats.Emitted != int64(len(in)) {
		t.Fatalf("miscounted clean trace: %+v", stats)
	}
}

// TestRecoverAccountingIdentity: over arbitrary (structurally random)
// traces, the budget identity holds and the repaired stream passes the
// Validator with zero errors.
func TestRecoverAccountingIdentity(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		in := randomTrace(seed, 2000)
		out, stats := Recover(in)
		if stats.Emitted != stats.Events-stats.Dropped+stats.Synthesized {
			t.Fatalf("seed %d: accounting identity broken: %+v", seed, stats)
		}
		if stats.Events != int64(len(in)) || stats.Emitted != int64(len(out)) {
			t.Fatalf("seed %d: counts disagree with slices: %+v (in %d, out %d)",
				seed, stats, len(in), len(out))
		}
		if errs, _ := Validate(out); len(errs) != 0 {
			t.Fatalf("seed %d: repaired trace fails validation: %v", seed, errs[0])
		}
	}
}

func recoverOne(t *testing.T, in []Event) ([]Event, RepairStats) {
	t.Helper()
	out, stats := Recover(in)
	if errs, _ := Validate(out); len(errs) != 0 {
		t.Fatalf("repaired trace fails validation: %v", errs[0])
	}
	return out, stats
}

func TestRecoverSynthesizesCloseOnIDReuse(t *testing.T) {
	in := []Event{
		{Time: 0, Kind: KindOpen, OpenID: 7, File: 1, Mode: ReadOnly, Size: 100},
		{Time: 10, Kind: KindSeek, OpenID: 7, OldPos: 40, NewPos: 60},
		// The close of open 7 was lost; the id comes back.
		{Time: 20, Kind: KindOpen, OpenID: 7, File: 2, Mode: WriteOnly},
		{Time: 30, Kind: KindClose, OpenID: 7, NewPos: 8},
	}
	out, stats := recoverOne(t, in)
	want := []Event{
		in[0], in[1],
		{Time: 20, Kind: KindClose, OpenID: 7, NewPos: 60}, // synthesized at last known position
		in[2], in[3],
	}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("got %v\nwant %v", out, want)
	}
	if stats.Synthesized != 1 || stats.Dropped != 0 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestRecoverDropsUnknownHandles(t *testing.T) {
	in := []Event{
		{Time: 0, Kind: KindOpen, OpenID: 1, File: 1, Mode: ReadOnly, Size: 10},
		{Time: 5, Kind: KindClose, OpenID: 99, NewPos: 1234}, // handle never opened
		{Time: 6, Kind: KindSeek, OpenID: 98, OldPos: 0, NewPos: 5},
		{Time: 7, Kind: KindUnlink, File: 77},   // file never introduced
		{Time: 8, Kind: KindTruncate, File: 78}, // file never introduced
		{Time: 9, Kind: KindClose, OpenID: 1, NewPos: 10},
	}
	out, stats := recoverOne(t, in)
	want := []Event{in[0], in[5]}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("got %v\nwant %v", out, want)
	}
	if stats.Dropped != 4 || stats.EstBytesLost != 1234 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestRecoverKeepsUnlinkOfSeenFile(t *testing.T) {
	in := []Event{
		{Time: 0, Kind: KindExec, File: 5, Size: 100},
		{Time: 1, Kind: KindUnlink, File: 5},
	}
	out, stats := recoverOne(t, in)
	if !reflect.DeepEqual(out, in) || !stats.Zero() {
		t.Fatalf("out %v, stats %+v", out, stats)
	}
}

func TestRecoverClampsTime(t *testing.T) {
	in := []Event{
		{Time: 1000, Kind: KindExec, File: 1, Size: 1},
		{Time: 400, Kind: KindExec, File: 2, Size: 1},                            // backwards
		{Time: 1000 + 2*DefaultMaxForwardJump, Kind: KindExec, File: 3, Size: 1}, // absurd jump
		{Time: 1100, Kind: KindExec, File: 4, Size: 1},                           // sane again
	}
	out, stats := recoverOne(t, in)
	wantTimes := []Time{1000, 1000, 1000, 1100}
	for i, e := range out {
		if e.Time != wantTimes[i] {
			t.Fatalf("event %d time %v, want %v (out %v)", i, e.Time, wantTimes[i], out)
		}
	}
	if stats.Rewritten != 2 || stats.Dropped != 0 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestRecoverFieldRepairs(t *testing.T) {
	in := []Event{
		{Time: 0, Kind: KindCreate, OpenID: 1, File: 1, Mode: Mode(9), Size: 55}, // bad mode, bad size
		{Time: 1, Kind: KindSeek, OpenID: 1, OldPos: -5, NewPos: -6},             // negative positions
		{Time: 2, Kind: KindClose, OpenID: 1, NewPos: -1},                        // close behind position
		{Time: 3, Kind: KindOpen, OpenID: 2, File: 1, Mode: ReadOnly, Size: -10}, // negative size
		{Time: 4, Kind: KindTruncate, File: 1, Size: -3},                         // negative length
		{Time: 5, Kind: KindExec, File: 1, Size: -2},                             // negative size
		{Time: 6, Kind: Kind(0)},                                                 // invalid kind
		{Time: 7, Kind: Kind(200)},                                               // invalid kind
	}
	out, stats := recoverOne(t, in)
	want := []Event{
		{Time: 0, Kind: KindCreate, OpenID: 1, File: 1, Mode: ReadOnly, Size: 0},
		{Time: 1, Kind: KindSeek, OpenID: 1, OldPos: 0, NewPos: 0},
		{Time: 2, Kind: KindClose, OpenID: 1, NewPos: 0},
		{Time: 3, Kind: KindOpen, OpenID: 2, File: 1, Mode: ReadOnly, Size: 0},
		{Time: 4, Kind: KindTruncate, File: 1, Size: 0},
		{Time: 5, Kind: KindExec, File: 1, Size: 0},
	}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("got %v\nwant %v", out, want)
	}
	if stats.Rewritten != 6 || stats.Dropped != 2 {
		t.Fatalf("stats: %+v", stats)
	}
}

// TestRecoverSeekRegressionClamp: a duplicated seek replays an old
// position; the repair clamps OldPos up to the tracked position.
func TestRecoverSeekRegressionClamp(t *testing.T) {
	in := []Event{
		{Time: 0, Kind: KindOpen, OpenID: 1, File: 1, Mode: ReadOnly, Size: 100},
		{Time: 1, Kind: KindSeek, OpenID: 1, OldPos: 10, NewPos: 50},
		{Time: 2, Kind: KindSeek, OpenID: 1, OldPos: 10, NewPos: 50}, // duplicate
		{Time: 3, Kind: KindClose, OpenID: 1, NewPos: 80},
	}
	out, stats := recoverOne(t, in)
	if out[2].OldPos != 50 {
		t.Fatalf("duplicate seek OldPos = %d, want clamped to 50 (out %v)", out[2].OldPos, out)
	}
	if stats.Rewritten != 1 {
		t.Fatalf("stats: %+v", stats)
	}
}
