package trace

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestMergeEmpty(t *testing.T) {
	if got := Merge(); got != nil {
		t.Errorf("Merge() = %v", got)
	}
	if got := Merge(nil, nil); len(got) != 0 {
		t.Errorf("Merge(nil, nil) = %v", got)
	}
}

func TestMergeSingleCopies(t *testing.T) {
	src := []Event{{Time: 1, Kind: KindUnlink, File: 7}}
	got := Merge(src)
	if len(got) != 1 || got[0] != src[0] {
		t.Fatalf("single-source merge altered events: %v", got)
	}
	got[0].File = 99
	if src[0].File != 7 {
		t.Errorf("single-source merge aliased the input")
	}
}

func TestMergeOrderAndRemap(t *testing.T) {
	a := []Event{
		{Time: 10, Kind: KindOpen, OpenID: 1, File: 5, User: 2, Mode: ReadOnly, Size: 100},
		{Time: 30, Kind: KindClose, OpenID: 1, NewPos: 100},
	}
	b := []Event{
		{Time: 20, Kind: KindOpen, OpenID: 1, File: 5, User: 2, Mode: WriteOnly},
		{Time: 40, Kind: KindClose, OpenID: 1, NewPos: 50},
	}
	got := Merge(a, b)
	if len(got) != 4 {
		t.Fatalf("len = %d", len(got))
	}
	times := []Time{got[0].Time, got[1].Time, got[2].Time, got[3].Time}
	if !sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] }) {
		t.Errorf("merged times not sorted: %v", times)
	}
	// Open ids and file ids from different sources must differ even
	// though the originals were equal.
	if got[0].OpenID == got[1].OpenID {
		t.Errorf("open ids collide after merge")
	}
	if got[0].File == got[1].File {
		t.Errorf("file ids collide after merge")
	}
	if got[0].User == got[1].User {
		t.Errorf("user ids collide after merge")
	}
	// The close events pair with their remapped opens.
	if got[2].OpenID != got[0].OpenID || got[3].OpenID != got[1].OpenID {
		t.Errorf("close events lost their opens: %+v", got)
	}
}

func TestMergedTraceValidates(t *testing.T) {
	a := randomValidTrace(1)
	b := randomValidTrace(2)
	c := randomValidTrace(3)
	merged := Merge(a, b, c)
	if len(merged) != len(a)+len(b)+len(c) {
		t.Fatalf("merged length %d != %d", len(merged), len(a)+len(b)+len(c))
	}
	errs, _ := Validate(merged)
	for _, err := range errs {
		t.Errorf("validator: %v", err)
	}
}

// randomValidTrace builds a small structurally valid trace: open/close
// pairs with occasional seeks and unlinks.
func randomValidTrace(seed int64) []Event {
	var events []Event
	tm := Time(seed * 7)
	openID := OpenID(1)
	for i := 0; i < 50; i++ {
		f := FileID(i%7 + 1)
		size := int64(i * 100)
		events = append(events, Event{Time: tm, Kind: KindOpen, OpenID: openID, File: f, User: UserID(seed), Mode: ReadOnly, Size: size})
		tm += Time(10 + seed)
		if i%3 == 0 {
			events = append(events, Event{Time: tm, Kind: KindSeek, OpenID: openID, OldPos: 0, NewPos: size / 2})
			tm += 5
		}
		events = append(events, Event{Time: tm, Kind: KindClose, OpenID: openID, NewPos: size})
		tm += Time(20 + seed*3)
		openID++
		if i%10 == 9 {
			events = append(events, Event{Time: tm, Kind: KindUnlink, File: f})
			tm += 3
		}
	}
	return events
}

// Property: merging preserves every source event up to identifier
// remapping — counts by kind and total bytes-in-size fields survive.
func TestMergePreservesContent(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		a := randomValidTrace(seedA%50 + 1)
		b := randomValidTrace(seedB%50 + 1)
		merged := Merge(a, b)
		var want, got Counts
		var wantSize, gotSize int64
		for _, e := range append(append([]Event{}, a...), b...) {
			want.Add(e)
			wantSize += e.Size
		}
		for _, e := range merged {
			got.Add(e)
			gotSize += e.Size
		}
		return want == got && wantSize == gotSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestWindow(t *testing.T) {
	events := []Event{
		{Time: 0, Kind: KindOpen, OpenID: 1, File: 1, Mode: ReadOnly, Size: 100},
		{Time: 50, Kind: KindSeek, OpenID: 1, OldPos: 0, NewPos: 10},
		{Time: 150, Kind: KindSeek, OpenID: 1, OldPos: 20, NewPos: 30}, // open outside window
		{Time: 160, Kind: KindClose, OpenID: 1, NewPos: 100},           // ditto
		{Time: 170, Kind: KindOpen, OpenID: 2, File: 2, Mode: ReadOnly, Size: 50},
		{Time: 180, Kind: KindClose, OpenID: 2, NewPos: 50},
		{Time: 250, Kind: KindUnlink, File: 2},
	}
	got := Window(events, 100, 200)
	// The dangling seek/close of open 1 are dropped; open 2's pair stays
	// and is rebased.
	want := []Event{
		{Time: 70, Kind: KindOpen, OpenID: 2, File: 2, Mode: ReadOnly, Size: 50},
		{Time: 80, Kind: KindClose, OpenID: 2, NewPos: 50},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Window = %+v, want %+v", got, want)
	}
	// A window keeps standalone events.
	got = Window(events, 200, 300)
	if len(got) != 1 || got[0].Kind != KindUnlink || got[0].Time != 50 {
		t.Fatalf("unlink window = %+v", got)
	}
	// Degenerate windows are empty.
	if Window(events, 100, 100) != nil || Window(events, 200, 100) != nil {
		t.Errorf("degenerate window not empty")
	}
}

func TestWindowedTraceValidates(t *testing.T) {
	full := randomValidTrace(4)
	mid := full[len(full)/2].Time
	win := Window(full, mid, mid+10_000)
	errs, _ := Validate(win)
	for _, err := range errs {
		t.Errorf("validator: %v", err)
	}
}
