package trace_test

import (
	"bytes"
	"fmt"
	"io"
	"log"

	"bsdtrace/internal/trace"
)

// A whole-file read, encoded to the binary format and decoded back.
func ExampleWriter() {
	events := []trace.Event{
		{Time: 0, Kind: trace.KindOpen, OpenID: 1, File: 42, User: 7, Mode: trace.ReadOnly, Size: 8192},
		{Time: 120 * trace.Millisecond, Kind: trace.KindClose, OpenID: 1, NewPos: 8192},
	}
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	for _, e := range events {
		if err := w.Write(e); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	r, err := trace.NewReader(&buf)
	if err != nil {
		log.Fatal(err)
	}
	for {
		e, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(e)
	}
	// Output:
	// 0 open 1 42 7 r 8192
	// 120 close 1 8192
}

// The text format round-trips through ParseEvent.
func ExampleParseEvent() {
	e, err := trace.ParseEvent("500 seek 3 0 4096")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(e.Kind, e.OpenID, e.OldPos, "->", e.NewPos)
	// Output:
	// seek 3 0 -> 4096
}

// Validate checks the structural invariants the analyses rely on.
func ExampleValidate() {
	events := []trace.Event{
		{Time: 10, Kind: trace.KindClose, OpenID: 99, NewPos: 0}, // never opened
	}
	errs, unclosed := trace.Validate(events)
	fmt.Println(len(errs), "errors,", unclosed, "unclosed")
	// Output:
	// 1 errors, 0 unclosed
}
