package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzParseEvent checks that the text parser never panics on arbitrary
// lines and that accepted events survive a format/parse round trip:
// whatever ParseEvent admits, formatEvent must print back into a line
// that parses to the identical event. The corpus seeds one line of every
// kind plus near-miss malformed lines.
func FuzzParseEvent(f *testing.F) {
	for _, line := range []string{
		"12 create 1 7 3 w 0",
		"104 open 2 7 3 r 8192",
		"350 close 2 8192",
		"400 seek 2 0 4096",
		"512 unlink 7",
		"612 truncate 7 100",
		"712 execve 9 3 20480",
		"# comment",
		"",
		"12 create 1 7 3 q 0", // bad mode
		"12 open 1 7 3 rw",    // short field list
		"x close 2 0",         // bad time
		"9 close 2 0 extra",   // long field list
		"-5 unlink 7",         // negative time
		"9223372036854775807 unlink 1",
		"12 frobnicate 1",
	} {
		f.Add(line)
	}
	f.Fuzz(func(t *testing.T, line string) {
		e, err := ParseEvent(line)
		if err != nil {
			return
		}
		again, err := ParseEvent(formatEvent(e))
		if err != nil {
			t.Fatalf("formatEvent(%+v) = %q does not re-parse: %v", e, formatEvent(e), err)
		}
		if again != e {
			t.Fatalf("round trip changed the event: %+v -> %q -> %+v", e, formatEvent(e), again)
		}
	})
}

// FuzzReaderNext feeds arbitrary bytes to the binary decoder: Next must
// never panic, and any stream it fully accepts must survive a
// re-encode/re-decode round trip. The corpus seeds a valid stream, a
// bare header, and truncations/corruptions of the valid stream.
func FuzzReaderNext(f *testing.F) {
	events := []Event{
		{Time: 10, Kind: KindCreate, OpenID: 1, File: 7, User: 3, Mode: WriteOnly},
		{Time: 20, Kind: KindSeek, OpenID: 1, OldPos: 0, NewPos: 4096},
		{Time: 30, Kind: KindClose, OpenID: 1, NewPos: 8192},
		{Time: 30, Kind: KindOpen, OpenID: 2, File: 7, User: 3, Mode: ReadOnly, Size: 8192},
		{Time: 45, Kind: KindClose, OpenID: 2, NewPos: 8192},
		{Time: 50, Kind: KindExec, File: 9, User: 3, Size: 20480},
		{Time: 60, Kind: KindTruncate, File: 7, Size: 100},
		{Time: 70, Kind: KindUnlink, File: 7},
	}
	var valid bytes.Buffer
	w := NewWriter(&valid)
	for _, e := range events {
		if err := w.Write(e); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:5])                    // header only: a valid empty trace
	f.Add(valid.Bytes()[:len(valid.Bytes())-3]) // truncated mid-record
	corrupt := append([]byte(nil), valid.Bytes()...)
	corrupt[7] ^= 0xff
	f.Add(corrupt)
	f.Add([]byte("BSDT"))
	f.Add([]byte("not a trace at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var got []Event
		for {
			e, err := r.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return // malformed mid-stream: rejected, fine
			}
			got = append(got, e)
		}

		// Fully accepted: the decoded events must re-encode and decode
		// to themselves (the codec is a bijection on its accepted set).
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, e := range got {
			if err := w.Write(e); err != nil {
				t.Fatalf("re-encoding decoded event %+v: %v", e, err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r2, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		back, err := r2.ReadAll()
		if err != nil {
			t.Fatalf("re-decoding: %v", err)
		}
		if len(back) != len(got) {
			t.Fatalf("round trip: %d events became %d", len(got), len(back))
		}
		for i := range got {
			if back[i] != got[i] {
				t.Fatalf("round trip changed event %d: %+v -> %+v", i, got[i], back[i])
			}
		}
	})
}
