// Package sourcetest is the shared conformance suite for trace.Source
// implementations. Every source in the tree — slice, codec reader,
// k-way merge, recovery, lenient ingestion, shard streams, fan-out
// subscribers, instrumented wrappers — runs the same checks, so the
// pull-stream contract is pinned in one place instead of being
// re-derived (slightly differently) in every package:
//
//   - Next returns the stream's events in order, then io.EOF, and the
//     EOF repeats on every further call (idempotent end of stream);
//   - batched reads via trace.ReadBatch deliver exactly the same
//     events for any buffer size — batch boundaries carry no meaning;
//   - NextBatch returns n > 0 with a nil error XOR n == 0 with a
//     non-nil error, and a zero-length buffer reads (0, nil);
//   - mixed Next/NextBatch interleavings observe the same stream.
//
// Implementations are supplied as factories because the suite drains
// each source several times, once per access pattern.
package sourcetest

import (
	"errors"
	"io"
	"testing"

	"bsdtrace/internal/trace"
)

// Factory builds a fresh instance of the source under test positioned
// at the start of its stream. It is called once per access pattern.
type Factory func(t *testing.T) trace.Source

// Run drains sources built by mk through every access pattern and
// fails t unless each drain yields exactly want followed by a clean,
// idempotent io.EOF.
func Run(t *testing.T, mk Factory, want []trace.Event) {
	t.Helper()

	t.Run("next", func(t *testing.T) {
		src := mk(t)
		got := drainNext(t, src)
		equal(t, got, want)
		checkEOFIdempotent(t, src)
	})

	for _, size := range []int{1, 3, 7, trace.DefaultBatchSize} {
		if size > len(want)+1 && size != trace.DefaultBatchSize {
			continue
		}
		t.Run("batch", func(t *testing.T) {
			src := mk(t)
			got := drainBatch(t, src, size)
			equal(t, got, want)
			checkBatchEOFIdempotent(t, src, size)
		})
	}

	t.Run("empty-buffer", func(t *testing.T) {
		src := mk(t)
		// A zero-length buffer is a no-op read, not an end-of-stream
		// probe: (0, nil), before and in the middle of the stream.
		if n, err := trace.ReadBatch(src, nil); n != 0 || err != nil {
			t.Fatalf("ReadBatch(src, nil) at start = (%d, %v), want (0, nil)", n, err)
		}
		if len(want) > 0 {
			if _, err := src.Next(); err != nil {
				t.Fatalf("Next after empty read: %v", err)
			}
			if n, err := trace.ReadBatch(src, nil); n != 0 || err != nil {
				t.Fatalf("ReadBatch(src, nil) mid-stream = (%d, %v), want (0, nil)", n, err)
			}
		}
	})

	t.Run("interleaved", func(t *testing.T) {
		src := mk(t)
		got := drainInterleaved(t, src)
		equal(t, got, want)
		checkEOFIdempotent(t, src)
	})
}

func drainNext(t *testing.T, src trace.Source) []trace.Event {
	t.Helper()
	var got []trace.Event
	for {
		e, err := src.Next()
		if err == io.EOF {
			return got
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		got = append(got, e)
	}
}

func drainBatch(t *testing.T, src trace.Source, size int) []trace.Event {
	t.Helper()
	buf := make([]trace.Event, size)
	var got []trace.Event
	for {
		n, err := trace.ReadBatch(src, buf)
		if n > 0 && err != nil {
			t.Fatalf("ReadBatch size %d: n=%d with err=%v, want n>0 XOR err", size, n, err)
		}
		if n == 0 {
			if err == io.EOF {
				return got
			}
			t.Fatalf("ReadBatch size %d: (0, %v), want (0, io.EOF) at end", size, err)
		}
		got = append(got, buf[:n]...)
	}
}

// drainInterleaved alternates single-event and batched reads in a fixed
// pattern, proving the two access paths observe one stream with no
// events duplicated or dropped at the boundary between them.
func drainInterleaved(t *testing.T, src trace.Source) []trace.Event {
	t.Helper()
	sizes := []int{1, 4, 2, 9}
	var got []trace.Event
	for step := 0; ; step++ {
		if step%2 == 0 {
			e, err := src.Next()
			if err == io.EOF {
				return got
			}
			if err != nil {
				t.Fatalf("interleaved Next: %v", err)
			}
			got = append(got, e)
			continue
		}
		buf := make([]trace.Event, sizes[(step/2)%len(sizes)])
		n, err := trace.ReadBatch(src, buf)
		if n == 0 {
			if err == io.EOF {
				return got
			}
			t.Fatalf("interleaved ReadBatch: (0, %v)", err)
		}
		got = append(got, buf[:n]...)
	}
}

func checkEOFIdempotent(t *testing.T, src trace.Source) {
	t.Helper()
	for i := 0; i < 3; i++ {
		e, err := src.Next()
		if err != io.EOF {
			t.Fatalf("Next after EOF (call %d) = (%+v, %v), want io.EOF", i+1, e, err)
		}
	}
}

func checkBatchEOFIdempotent(t *testing.T, src trace.Source, size int) {
	t.Helper()
	buf := make([]trace.Event, size)
	for i := 0; i < 3; i++ {
		n, err := trace.ReadBatch(src, buf)
		if n != 0 || err != io.EOF {
			t.Fatalf("ReadBatch after EOF (call %d) = (%d, %v), want (0, io.EOF)", i+1, n, err)
		}
	}
}

func equal(t *testing.T, got, want []trace.Event) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("drained %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// RunSticky checks terminal-error stickiness: a source whose stream
// ends in a non-EOF error must keep returning that error (or one with
// the same message) on every call after first reporting it, through
// both Next and NextBatch, with any events before the error delivered
// intact.
func RunSticky(t *testing.T, mk Factory, wantEvents int) {
	t.Helper()

	terminal := func(t *testing.T, src trace.Source, drain func() (int, error)) error {
		t.Helper()
		got := 0
		for {
			n, err := drain()
			got += n
			if err == nil {
				continue
			}
			if err == io.EOF {
				t.Fatal("stream ended in io.EOF, want a terminal error")
			}
			if got != wantEvents {
				t.Fatalf("drained %d events before terminal error, want %d", got, wantEvents)
			}
			return err
		}
	}

	t.Run("next", func(t *testing.T) {
		src := mk(t)
		first := terminal(t, src, func() (int, error) {
			if _, err := src.Next(); err != nil {
				return 0, err
			}
			return 1, nil
		})
		for i := 0; i < 3; i++ {
			if _, err := src.Next(); !sameError(err, first) {
				t.Fatalf("Next after terminal error = %v, want %v", err, first)
			}
		}
	})

	t.Run("batch", func(t *testing.T) {
		src := mk(t)
		buf := make([]trace.Event, 4)
		first := terminal(t, src, func() (int, error) {
			return trace.ReadBatch(src, buf)
		})
		for i := 0; i < 3; i++ {
			if n, err := trace.ReadBatch(src, buf); n != 0 || !sameError(err, first) {
				t.Fatalf("ReadBatch after terminal error = (%d, %v), want (0, %v)", n, err, first)
			}
		}
	})
}

func sameError(got, want error) bool {
	if got == nil {
		return false
	}
	return errors.Is(got, want) || got.Error() == want.Error()
}
