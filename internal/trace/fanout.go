package trace

import (
	"errors"
	"io"
	"sync"
	"sync/atomic"
)

// Fanout is the generate-once tee: one producer pushes an event stream
// in, and every subscriber reads the whole stream as its own Source,
// concurrently, through a bounded channel of shared event batches. The
// producer never materializes the stream and never re-generates it —
// each batch is refcounted across the subscribers and returned to the
// batch pool when the last one releases it.
//
// Memory is bounded at O(subscribers * fanoutChanBuffer * batch), so a
// slow subscriber throttles the producer instead of growing a queue.
// Every subscriber must therefore be drained by its own goroutine (or
// canceled); two subscribers consumed sequentially from one goroutine
// deadlock by construction.
type Fanout struct {
	subs   []*FanoutSub
	buf    []Event
	closed bool
}

// fanoutChanBuffer is each subscriber's channel capacity in batches:
// enough slack that subscribers at slightly different speeds do not
// convoy, small enough that fan-out memory stays trivial.
const fanoutChanBuffer = 8

// ErrFanoutDone is returned by Write once every subscriber has
// canceled: nothing is listening, so the producer may stop early.
var ErrFanoutDone = errors.New("trace: all fanout subscribers canceled")

// sharedBatch is one refcounted slice of events shared read-only by all
// subscribers it was sent to.
type sharedBatch struct {
	events []Event
	refs   atomic.Int32
}

func (b *sharedBatch) release() {
	if b.refs.Add(-1) == 0 {
		PutBatch(b.events[:cap(b.events)])
	}
}

// NewFanout creates a tee with n subscribers, Source(0) through
// Source(n-1).
func NewFanout(n int) *Fanout {
	f := &Fanout{}
	for i := 0; i < n; i++ {
		f.subs = append(f.subs, &FanoutSub{
			ch:     make(chan *sharedBatch, fanoutChanBuffer),
			cancel: make(chan struct{}),
		})
	}
	return f
}

// Source returns subscriber i's end of the tee.
func (f *Fanout) Source(i int) *FanoutSub { return f.subs[i] }

// Write pushes one event to every live subscriber, batching internally.
// It is shaped to be a workload sink (func(Event) error). Write blocks
// when a subscriber's channel is full; it returns ErrFanoutDone once
// every subscriber has canceled.
func (f *Fanout) Write(e Event) error {
	if f.buf == nil {
		f.buf = GetBatch()[:0]
	}
	f.buf = append(f.buf, e)
	if len(f.buf) == cap(f.buf) {
		return f.flush()
	}
	return nil
}

// flush shares the pending batch out to the live subscribers.
func (f *Fanout) flush() error {
	if len(f.buf) == 0 {
		return nil
	}
	sb := &sharedBatch{events: f.buf}
	f.buf = nil
	live := 0
	for _, s := range f.subs {
		if s.dead {
			continue
		}
		// Poll cancel before counting: a send and a closed cancel are
		// both ready in the select below, so without this check a
		// canceled subscriber with channel space would keep receiving.
		select {
		case <-s.cancel:
			s.dead = true
		default:
			live++
		}
	}
	if live == 0 {
		PutBatch(sb.events[:cap(sb.events)])
		return ErrFanoutDone
	}
	sb.refs.Store(int32(live))
	for _, s := range f.subs {
		if s.dead {
			continue
		}
		select {
		case s.ch <- sb:
		case <-s.cancel:
			s.dead = true
			sb.release()
		}
	}
	return nil
}

// Close flushes the final partial batch and ends every subscriber's
// stream: with a nil err subscribers see io.EOF, otherwise they see
// err. Close must be called exactly once, after the last Write.
func (f *Fanout) Close(err error) {
	if f.closed {
		return
	}
	f.closed = true
	if ferr := f.flush(); ferr != nil && err == nil && ferr != ErrFanoutDone {
		err = ferr
	}
	for _, s := range f.subs {
		s.err = err
		close(s.ch)
	}
}

// FanoutSub is one subscriber's Source over the shared stream. It is
// owned by a single consumer goroutine.
type FanoutSub struct {
	ch     chan *sharedBatch
	cancel chan struct{}
	err    error // terminal error, readable after ch closes
	dead   bool  // producer-side: subscriber canceled

	once sync.Once
	cur  *sharedBatch
	pos  int
}

// fill advances to the next shared batch, releasing the current one.
// It returns false at end of stream.
func (s *FanoutSub) fill() bool {
	if s.cur != nil {
		s.cur.release()
		s.cur, s.pos = nil, 0
	}
	sb, ok := <-s.ch
	if !ok {
		return false
	}
	s.cur = sb
	return true
}

// Next returns the next event of the stream.
func (s *FanoutSub) Next() (Event, error) {
	for s.cur == nil || s.pos >= len(s.cur.events) {
		if !s.fill() {
			if s.err != nil {
				return Event{}, s.err
			}
			return Event{}, io.EOF
		}
	}
	e := s.cur.events[s.pos]
	s.pos++
	return e, nil
}

// NextBatch copies the pending events of the current shared batch.
func (s *FanoutSub) NextBatch(buf []Event) (int, error) {
	if len(buf) == 0 {
		return 0, nil // a zero-length buffer is a no-op read
	}
	for s.cur == nil || s.pos >= len(s.cur.events) {
		if !s.fill() {
			if s.err != nil {
				return 0, s.err
			}
			return 0, io.EOF
		}
	}
	n := copy(buf, s.cur.events[s.pos:])
	s.pos += n
	return n, nil
}

// Cancel tells the producer this subscriber is done; the producer stops
// sending to it and no longer blocks on its channel. Safe to call more
// than once, and always safe to defer — canceling after a clean EOF is
// a no-op. Batches already queued are released opportunistically; any
// that race a concurrent send are reclaimed by the garbage collector
// rather than the pool.
func (s *FanoutSub) Cancel() {
	s.once.Do(func() { close(s.cancel) })
	if s.cur != nil {
		s.cur.release()
		s.cur, s.pos = nil, 0
	}
	for {
		select {
		case sb, ok := <-s.ch:
			if !ok {
				return
			}
			sb.release()
		default:
			return
		}
	}
}
