package trace

import (
	"errors"
	"io"
	"sync"
	"sync/atomic"
)

// Fanout is the generate-once tee: one producer pushes an event stream
// in, and every subscriber reads the whole stream as its own Source,
// concurrently, through a bounded channel of shared event batches. The
// producer never materializes the stream and never re-generates it —
// each batch is refcounted across the subscribers and returned to the
// batch pool when the last one releases it.
//
// Subscribers may be fixed up front (NewFanout(n) + Source(i)) or added
// while the producer is running (Subscribe); a dynamic subscriber joins
// at the next batch boundary and sees the stream from there on. A
// subscriber that cancels is retired by the producer: its channel is
// drained, every stranded batch is released back to the pool, and it is
// removed from the live set.
//
// Memory is bounded at O(subscribers * fanoutChanBuffer * batch), so a
// slow subscriber throttles the producer instead of growing a queue.
// Every subscriber must therefore be drained by its own goroutine (or
// canceled); two subscribers consumed sequentially from one goroutine
// deadlock by construction.
type Fanout struct {
	// mu guards subs, closed, and err. The producer-side batch buffer
	// and each subscriber's dead flag are touched only by the producer
	// goroutine and need no lock.
	mu      sync.Mutex
	subs    []*FanoutSub
	closed  bool
	err     error
	initial []*FanoutSub // NewFanout's subscribers, for Source(i)
	scratch []*FanoutSub // reused per-flush snapshot buffer
	buf     []Event
}

// fanoutChanBuffer is each subscriber's channel capacity in batches:
// enough slack that subscribers at slightly different speeds do not
// convoy, small enough that fan-out memory stays trivial.
const fanoutChanBuffer = 8

// ErrFanoutDone is returned by Write once every subscriber has
// canceled: nothing is listening, so the producer may stop early.
var ErrFanoutDone = errors.New("trace: all fanout subscribers canceled")

// sharedBatch is one refcounted slice of events shared read-only by all
// subscribers it was sent to.
type sharedBatch struct {
	events []Event
	refs   atomic.Int32
}

func (b *sharedBatch) release() {
	switch n := b.refs.Add(-1); {
	case n == 0:
		PutBatch(b.events[:cap(b.events)])
	case n < 0:
		// A batch released more times than it had references would put
		// the same slice in the pool twice and corrupt whoever draws it
		// next; fail loudly here, where the bug is, not there.
		panic("trace: fanout batch over-released")
	}
}

// NewFanout creates a tee with n subscribers, Source(0) through
// Source(n-1).
func NewFanout(n int) *Fanout {
	f := &Fanout{}
	for i := 0; i < n; i++ {
		f.initial = append(f.initial, f.Subscribe())
	}
	return f
}

// Source returns subscriber i's end of the tee, counting the
// subscribers NewFanout created (dynamic subscribers are addressed by
// the *FanoutSub that Subscribe returned).
func (f *Fanout) Source(i int) *FanoutSub { return f.initial[i] }

// Subscribe adds a subscriber. Called before the first Write it sees
// the whole stream; called while the producer is running it joins at
// the next batch boundary; called after Close it returns an already
// terminated subscriber whose Next is the closing error (io.EOF for a
// clean close). Subscribe is safe to call from any goroutine.
func (f *Fanout) Subscribe() *FanoutSub {
	s := &FanoutSub{
		ch:     make(chan *sharedBatch, fanoutChanBuffer),
		cancel: make(chan struct{}),
	}
	f.mu.Lock()
	if f.closed {
		s.err = f.err
		close(s.ch)
	} else {
		f.subs = append(f.subs, s)
	}
	f.mu.Unlock()
	return s
}

// snapshot copies the live subscriber set into the reused scratch
// buffer. Only the producer calls it, so the buffer is never shared.
func (f *Fanout) snapshot() []*FanoutSub {
	f.mu.Lock()
	f.scratch = append(f.scratch[:0], f.subs...)
	f.mu.Unlock()
	return f.scratch
}

// retire marks s dead, releases every batch stranded in its channel,
// and removes it from the live set. Only the producer calls retire, and
// the producer never sends to a dead subscriber again, so the channel
// can only shrink here. The consumer's own Cancel drain may be
// receiving concurrently; each stranded batch is received — and
// released — by exactly one side. This is the fix for the old
// cancel-during-flush race, where a send that won the select against a
// subscriber whose Cancel drain had already run left the batch in the
// channel with its references forever unreleased.
func (f *Fanout) retire(s *FanoutSub) {
	s.dead = true
	for {
		select {
		case sb, ok := <-s.ch:
			if !ok {
				return
			}
			sb.release()
		default:
			f.mu.Lock()
			for i, x := range f.subs {
				if x == s {
					f.subs = append(f.subs[:i], f.subs[i+1:]...)
					break
				}
			}
			f.mu.Unlock()
			return
		}
	}
}

// Write pushes one event to every live subscriber, batching internally.
// It is shaped to be a workload sink (func(Event) error). Write blocks
// when a subscriber's channel is full; it returns ErrFanoutDone once
// every subscriber has canceled.
func (f *Fanout) Write(e Event) error {
	if f.buf == nil {
		f.buf = GetBatch()[:0]
	}
	f.buf = append(f.buf, e)
	if len(f.buf) == cap(f.buf) {
		return f.flush()
	}
	return nil
}

// flush shares the pending batch out to the live subscribers.
func (f *Fanout) flush() error {
	if len(f.buf) == 0 {
		return nil
	}
	sb := &sharedBatch{events: f.buf}
	f.buf = nil
	subs := f.snapshot()
	live := 0
	for _, s := range subs {
		// Poll cancel before counting: a send and a closed cancel are
		// both ready in the select below, so without this check a
		// canceled subscriber with channel space would keep receiving.
		select {
		case <-s.cancel:
			f.retire(s)
		default:
			live++
		}
	}
	if live == 0 {
		PutBatch(sb.events[:cap(sb.events)])
		return ErrFanoutDone
	}
	sb.refs.Store(int32(live))
	for _, s := range subs {
		if s.dead {
			continue
		}
		select {
		case s.ch <- sb:
		case <-s.cancel:
			sb.release()
			f.retire(s)
		}
	}
	return nil
}

// Close flushes the final partial batch and ends every subscriber's
// stream: with a nil err subscribers see io.EOF, otherwise they see
// err. Close must be called exactly once, after the last Write, from
// the producer goroutine.
func (f *Fanout) Close(err error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.mu.Unlock()
	if ferr := f.flush(); ferr != nil && err == nil && ferr != ErrFanoutDone {
		err = ferr
	}
	f.mu.Lock()
	f.closed = true
	f.err = err
	subs := append([]*FanoutSub(nil), f.subs...)
	f.subs = nil
	f.mu.Unlock()
	for _, s := range subs {
		// A subscriber that canceled after the last flush polled it may
		// still hold batches a racing send left behind; reclaim them
		// before ending its stream.
		select {
		case <-s.cancel:
			f.retire(s)
		default:
		}
		s.err = err
		close(s.ch)
	}
}

// FanoutSub is one subscriber's Source over the shared stream. It is
// owned by a single consumer goroutine.
type FanoutSub struct {
	ch     chan *sharedBatch
	cancel chan struct{}
	err    error // terminal error, readable after ch closes
	dead   bool  // producer-side: subscriber canceled and retired

	once sync.Once
	cur  *sharedBatch
	pos  int
}

// fill advances to the next shared batch, releasing the current one.
// It returns false at end of stream.
func (s *FanoutSub) fill() bool {
	if s.cur != nil {
		s.cur.release()
		s.cur, s.pos = nil, 0
	}
	sb, ok := <-s.ch
	if !ok {
		return false
	}
	s.cur = sb
	return true
}

// Next returns the next event of the stream.
func (s *FanoutSub) Next() (Event, error) {
	for s.cur == nil || s.pos >= len(s.cur.events) {
		if !s.fill() {
			if s.err != nil {
				return Event{}, s.err
			}
			return Event{}, io.EOF
		}
	}
	e := s.cur.events[s.pos]
	s.pos++
	return e, nil
}

// NextBatch copies the pending events of the current shared batch.
func (s *FanoutSub) NextBatch(buf []Event) (int, error) {
	if len(buf) == 0 {
		return 0, nil // a zero-length buffer is a no-op read
	}
	for s.cur == nil || s.pos >= len(s.cur.events) {
		if !s.fill() {
			if s.err != nil {
				return 0, s.err
			}
			return 0, io.EOF
		}
	}
	n := copy(buf, s.cur.events[s.pos:])
	s.pos += n
	return n, nil
}

// Cancel tells the producer this subscriber is done; the producer stops
// sending to it, drains anything already queued, and drops it from the
// live set. Safe to call more than once, and always safe to defer —
// canceling after a clean EOF is a no-op. Batches queued at cancel time
// are released here when possible; one that races a concurrent send is
// reclaimed by the producer when it next touches this subscriber
// (flush or Close), so no batch is ever stranded away from the pool.
func (s *FanoutSub) Cancel() {
	s.once.Do(func() { close(s.cancel) })
	if s.cur != nil {
		s.cur.release()
		s.cur, s.pos = nil, 0
	}
	for {
		select {
		case sb, ok := <-s.ch:
			if !ok {
				return
			}
			sb.release()
		default:
			return
		}
	}
}
