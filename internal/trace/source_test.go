package trace

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

// TestSliceSourceRoundTrip: ReadSource over a SliceSource is the identity.
func TestSliceSourceRoundTrip(t *testing.T) {
	events := randomValidTrace(5)
	got, err := ReadSource(NewSliceSource(events))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("ReadSource(SliceSource) changed the events")
	}
}

// TestCopySource: piping a source through a writer yields the same binary
// stream as writing the slice directly.
func TestCopySource(t *testing.T) {
	events := randomValidTrace(6)
	var direct, piped bytes.Buffer
	w := NewWriter(&direct)
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	w2 := NewWriter(&piped)
	n, err := CopySource(w2, NewSliceSource(events))
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Flush(); err != nil {
		t.Fatal(err)
	}
	if n != int64(len(events)) {
		t.Fatalf("copied %d events, want %d", n, len(events))
	}
	if !bytes.Equal(direct.Bytes(), piped.Bytes()) {
		t.Fatalf("CopySource bytes differ from direct writes")
	}
}

// TestMergeSourceMatchesMerge: the streaming k-way merge and the
// in-memory Merge are the same function.
func TestMergeSourceMatchesMerge(t *testing.T) {
	a := randomValidTrace(1)
	b := randomValidTrace(2)
	c := randomValidTrace(3)
	want := Merge(a, b, c)
	got, err := ReadSource(NewMergeSource(NewSliceSource(a), NewSliceSource(b), NewSliceSource(c)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("MergeSource diverges from Merge: %d vs %d events", len(got), len(want))
	}
}

// TestMergeSourceSingleIdentity: a one-source merge must not remap
// anything — Shards=1 and unsharded generation depend on it.
func TestMergeSourceSingleIdentity(t *testing.T) {
	events := randomValidTrace(4)
	got, err := ReadSource(NewMergeSource(NewSliceSource(events)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("single-source MergeSource altered events")
	}
}

// TestMergeSourceEmpty: no sources and empty sources both end cleanly.
func TestMergeSourceEmpty(t *testing.T) {
	if _, err := NewMergeSource().Next(); err != io.EOF {
		t.Fatalf("empty merge Next err = %v, want io.EOF", err)
	}
	m := NewMergeSource(NewSliceSource(nil), NewSliceSource(nil))
	if _, err := m.Next(); err != io.EOF {
		t.Fatalf("merge of empty sources err = %v, want io.EOF", err)
	}
}

// TestMergeSourceConstantAllocs guards the merge's bounded-memory
// contract: once primed, draining must not allocate per event. (The heap
// reorders a fixed item slice; events pass through by value.)
func TestMergeSourceConstantAllocs(t *testing.T) {
	a := randomValidTrace(7)
	b := randomValidTrace(8)
	m := NewMergeSource(NewSliceSource(a), NewSliceSource(b))
	if _, err := m.Next(); err != nil { // prime: heap + remap buffers
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(len(a)+len(b)-2, func() {
		if _, err := m.Next(); err != nil && err != io.EOF {
			t.Fatal(err)
		}
	})
	if avg > 0.01 {
		t.Errorf("merge allocates %.2f allocs/event after priming, want 0", avg)
	}
}

// TestWindowSourceMatchesWindow: the streaming window and the in-memory
// Window are the same function (Window is implemented on WindowSource, so
// this pins the wiring).
func TestWindowSourceMatchesWindow(t *testing.T) {
	full := randomValidTrace(9)
	mid := full[len(full)/2].Time
	want := Window(full, mid, mid+10_000)
	got, err := ReadSource(WindowSource(NewSliceSource(full), mid, mid+10_000))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("WindowSource diverges from Window")
	}
}

// standaloneKinds are event kinds with no open-id pairing, so arbitrary
// interleavings of them stay structurally valid.
var standaloneKinds = [...]Kind{KindUnlink, KindTruncate, KindExec}

// fuzzTrace builds a time-ordered trace from fuzz bytes: each byte is a
// time delta (kind and file derived from it).
func fuzzTrace(data []byte, user UserID) []Event {
	events := make([]Event, 0, len(data))
	tm := Time(0)
	for i, d := range data {
		tm += Time(d)
		events = append(events, Event{
			Time: tm,
			Kind: standaloneKinds[int(d)%len(standaloneKinds)],
			File: FileID(i%9 + 1),
			User: user,
			Size: int64(d),
		})
	}
	return events
}

// FuzzMergeSource is the k-way merge's property test: for arbitrary
// time-ordered inputs the merged stream is length-preserving, sorted by
// time, and content-preserving up to identifier remapping (event kinds
// and size sums survive).
func FuzzMergeSource(f *testing.F) {
	f.Add([]byte{}, []byte{}, []byte{})
	f.Add([]byte{1, 2, 3}, []byte{2}, []byte{})
	f.Add([]byte{0, 0, 0}, []byte{0, 0}, []byte{255, 255})
	f.Add([]byte{10, 20}, []byte{15, 5, 30}, []byte{1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, a, b, c []byte) {
		srcs := [][]Event{fuzzTrace(a, 1), fuzzTrace(b, 2), fuzzTrace(c, 3)}
		merged, err := ReadSource(NewMergeSource(
			NewSliceSource(srcs[0]), NewSliceSource(srcs[1]), NewSliceSource(srcs[2])))
		if err != nil {
			t.Fatal(err)
		}
		want := len(srcs[0]) + len(srcs[1]) + len(srcs[2])
		if len(merged) != want {
			t.Fatalf("merge not length-preserving: %d events in, %d out", want, len(merged))
		}
		var wantCounts, gotCounts Counts
		var wantSize, gotSize int64
		for _, src := range srcs {
			for _, e := range src {
				wantCounts.Add(e)
				wantSize += e.Size
			}
		}
		for i, e := range merged {
			if i > 0 && e.Time < merged[i-1].Time {
				t.Fatalf("merge output not time-ordered at %d: %v after %v", i, e.Time, merged[i-1].Time)
			}
			gotCounts.Add(e)
			gotSize += e.Size
		}
		if wantCounts != gotCounts || wantSize != gotSize {
			t.Fatalf("merge lost content: counts %v vs %v, size %d vs %d",
				wantCounts, gotCounts, wantSize, gotSize)
		}
	})
}
