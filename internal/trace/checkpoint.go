package trace

import (
	"encoding/binary"
	"hash/crc32"
	"io"
)

// Version-2 checkpointed framing.
//
// Real tracers lose data: kernel trace buffers overrun, machines reboot
// mid-trace, files rot on tape. The version-1 framing amplifies every
// such wound — delta-encoded times mean one damaged byte desynchronizes
// everything after it — so version 2 inserts a resync checkpoint every
// DefaultCheckpointInterval records (and one at Flush):
//
//	marker     8 bytes: 0xFF "BSDCKPT" (0xFF is never a valid kind byte,
//	           so a checkpoint is unambiguous at a record boundary and
//	           scannable from arbitrary byte positions)
//	segBytes   uvarint, record bytes in the preceding segment
//	segRecords uvarint, records in the preceding segment
//	recordIdx  uvarint, total records written before this checkpoint
//	absTime    varint, absolute time of the last record (the delta base
//	           for the next segment)
//	segCRC     4 bytes LE, CRC32 (IEEE) of the preceding segment's bytes
//	ckCRC      4 bytes LE, CRC32 (IEEE) of the checkpoint payload above
//	           (segBytes through segCRC), so a damaged checkpoint is
//	           never trusted for resync
//
// The reader holds each segment's decoded events until the closing
// checkpoint verifies them (bounded by the interval), so corruption that
// still decodes — a bit flip inside a varint — can never leak an event:
// either the whole segment checks out or none of it is emitted. On any
// failure the reader scans forward for the next marker, restores the
// absolute time and record index from its payload, and resumes; the
// damage costs at most one segment plus the bytes to the next checkpoint.

// DefaultCheckpointInterval is the records-per-checkpoint default for
// NewWriterV2: small enough that one lost segment is a rounding error on
// any real trace, large enough that checkpoints are well under 1% of the
// stream.
const DefaultCheckpointInterval = 4096

// checkpointMarker begins every checkpoint. 0xFF is an invalid kind, so
// a version-2 reader positioned at a record boundary cannot confuse a
// record with a checkpoint.
var checkpointMarker = [8]byte{0xFF, 'B', 'S', 'D', 'C', 'K', 'P', 'T'}

// checkpoint is a decoded checkpoint payload.
type checkpoint struct {
	segBytes   uint64
	segRecords uint64
	recordIdx  uint64
	absTime    Time
	segCRC     uint32
}

// writeCheckpoint seals the current segment. Checkpoint bytes are not
// part of any segment CRC.
func (w *Writer) writeCheckpoint() {
	if w.err != nil {
		return
	}
	var payload []byte
	var tmp [binary.MaxVarintLen64]byte
	payload = append(payload, tmp[:binary.PutUvarint(tmp[:], uint64(w.segBytes))]...)
	payload = append(payload, tmp[:binary.PutUvarint(tmp[:], uint64(w.segRecords))]...)
	payload = append(payload, tmp[:binary.PutUvarint(tmp[:], uint64(w.count))]...)
	payload = append(payload, tmp[:binary.PutVarint(tmp[:], int64(w.prev))]...)
	payload = binary.LittleEndian.AppendUint32(payload, w.segCRC)
	payload = binary.LittleEndian.AppendUint32(payload, crc32.ChecksumIEEE(payload))
	if _, w.err = w.w.Write(checkpointMarker[:]); w.err != nil {
		return
	}
	if _, w.err = w.w.Write(payload); w.err != nil {
		return
	}
	w.segCRC, w.segBytes, w.segRecords = 0, 0, 0
}

// nextV2 emits the next event of the current verified segment, filling
// the segment buffer when it runs dry.
func (r *Reader) nextV2() (Event, error) {
	for r.segPos >= len(r.seg) {
		if r.eof {
			return Event{}, io.EOF
		}
		if err := r.fillSegment(); err != nil {
			return Event{}, err
		}
	}
	e := r.seg[r.segPos]
	r.segPos++
	r.index++
	return e, nil
}

// fillSegment decodes records up to the next checkpoint and verifies
// them against it. On corruption — an undecodable record, a checkpoint
// that fails its own CRC, or a segment that fails the checkpoint's CRC —
// it discards the segment, resynchronizes at the next trustworthy
// checkpoint, and tries again. Only genuine I/O errors are returned;
// corruption is absorbed into Skipped().
func (r *Reader) fillSegment() error {
	for {
		r.seg = r.seg[:0]
		r.segPos = 0
		r.r.crc = 0
		segStart := r.r.off
		prevStart := r.prev
	record:
		for {
			boundary := r.r.off
			crcBefore := r.r.crc
			b, err := r.r.ReadByte()
			if err == io.EOF {
				if r.r.off > segStart {
					// Truncated tail: records decoded (or bytes consumed)
					// after the last checkpoint are unverifiable; drop them
					// rather than emit events no CRC ever covered.
					r.skip.Bytes += r.r.off - segStart
					r.skip.Records += int64(len(r.seg))
					r.skip.Segments++
					r.seg = r.seg[:0]
				}
				r.eof = true
				return nil
			}
			if err != nil {
				return err
			}
			if b == checkpointMarker[0] {
				r.r.crc = crcBefore // the marker is not segment data
				segCRC := r.r.crc
				ck, ok := r.readCheckpoint(1)
				if ok &&
					ck.segCRC == segCRC &&
					ck.segBytes == uint64(boundary-segStart) &&
					ck.segRecords == uint64(len(r.seg)) &&
					ck.recordIdx == uint64(r.index)+uint64(len(r.seg)) &&
					(ck.segRecords == 0 || ck.absTime == r.prev) {
					if len(r.seg) == 0 {
						// An empty verified segment (e.g. a Flush right
						// after an interval checkpoint): keep going.
						break record
					}
					return nil
				}
				if ok {
					// The checkpoint is intact but the segment is not:
					// drop the segment and resync right here.
					r.skip.Bytes += r.r.off - segStart
					if d := int64(ck.recordIdx) - r.index; d > 0 {
						r.skip.Records += d
					}
					r.skip.Segments++
					r.index = int64(ck.recordIdx)
					r.prev = ck.absTime
					break record
				}
				// Marker byte at a boundary but no valid checkpoint
				// behind it: corruption. Scan forward.
				if !r.scanToCheckpoint(segStart, prevStart) {
					return nil // EOF while scanning
				}
				break record
			}
			e, err := r.decodeBody(b)
			if err != nil {
				if !r.scanToCheckpoint(segStart, prevStart) {
					return nil
				}
				break record
			}
			r.seg = append(r.seg, e)
		}
	}
}

// readCheckpoint reads a checkpoint whose first matched bytes of the
// marker are already consumed, returning ok only if the remaining marker
// bytes match and the payload verifies against its own CRC. The segment
// CRC state is unaffected (callers snapshot it before the marker).
func (r *Reader) readCheckpoint(consumed int) (checkpoint, bool) {
	crcWas, crcOnWas := r.r.crc, r.r.crcOn
	r.r.crcOn = false
	defer func() { r.r.crc, r.r.crcOn = crcWas, crcOnWas }()

	for i := consumed; i < len(checkpointMarker); i++ {
		b, err := r.r.ReadByte()
		if err != nil || b != checkpointMarker[i] {
			return checkpoint{}, false
		}
	}
	var payload []byte
	readUvarint := func() (uint64, bool) {
		var x uint64
		var shift uint
		for {
			b, err := r.r.ReadByte()
			if err != nil || len(payload) > 64 {
				return 0, false
			}
			payload = append(payload, b)
			if b < 0x80 {
				if shift >= 64 || (shift == 63 && b > 1) {
					return 0, false
				}
				return x | uint64(b)<<shift, true
			}
			x |= uint64(b&0x7f) << shift
			shift += 7
			if shift >= 64 {
				return 0, false
			}
		}
	}
	var ck checkpoint
	var ok bool
	if ck.segBytes, ok = readUvarint(); !ok {
		return checkpoint{}, false
	}
	if ck.segRecords, ok = readUvarint(); !ok {
		return checkpoint{}, false
	}
	if ck.recordIdx, ok = readUvarint(); !ok {
		return checkpoint{}, false
	}
	t, ok := readUvarint()
	if !ok {
		return checkpoint{}, false
	}
	// Undo the zig-zag encoding of PutVarint by hand so the raw payload
	// bytes stay available for the payload CRC.
	ck.absTime = Time(int64(t>>1) ^ -int64(t&1))
	var crcb [8]byte
	for i := range crcb {
		b, err := r.r.ReadByte()
		if err != nil {
			return checkpoint{}, false
		}
		crcb[i] = b
	}
	ck.segCRC = binary.LittleEndian.Uint32(crcb[:4])
	payload = append(payload, crcb[:4]...)
	if binary.LittleEndian.Uint32(crcb[4:]) != crc32.ChecksumIEEE(payload) {
		return checkpoint{}, false
	}
	return ck, true
}

// scanToCheckpoint discards the current segment and scans byte by byte
// for the next checkpoint whose payload verifies, restoring the decoding
// state from it. It reports false at EOF (the reader is finished).
// segStart and prevStart are the discarded segment's start offset and
// delta-time base, for the skip accounting and state rollback.
func (r *Reader) scanToCheckpoint(segStart int64, prevStart Time) bool {
	decoded := int64(len(r.seg))
	r.seg = r.seg[:0]
	r.prev = prevStart // decodeBody may have advanced it into garbage
	match := 0
	for {
		b, err := r.r.ReadByte()
		if err != nil {
			r.skip.Bytes += r.r.off - segStart
			r.skip.Records += decoded
			r.skip.Segments++
			r.eof = true
			return false
		}
		if b != checkpointMarker[match] {
			match = 0
			if b == checkpointMarker[0] {
				match = 1
			}
			continue
		}
		match++
		if match < len(checkpointMarker) {
			continue
		}
		markerStart := r.r.off - int64(len(checkpointMarker))
		ck, ok := r.readCheckpoint(len(checkpointMarker))
		if !ok {
			// A false marker inside record data, or a damaged
			// checkpoint: keep scanning.
			match = 0
			continue
		}
		r.skip.Bytes += markerStart - segStart
		if d := int64(ck.recordIdx) - r.index; d > 0 {
			r.skip.Records += d
		}
		r.skip.Segments++
		r.index = int64(ck.recordIdx)
		r.prev = ck.absTime
		return true
	}
}
