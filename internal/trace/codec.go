package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// The binary trace file format is a 5-byte header ("BSDT" plus a version
// byte) followed by one variable-length record per event:
//
//	kind      1 byte
//	Δtime     signed varint, milliseconds since the previous event
//	fields    per-kind varints, in the field order of Table II
//
// Delta-encoded times and varint fields keep trace files small; the 1985
// tracer had the same concern (§3: "Our main concern in gathering file
// system trace information was the volume of data").

var magic = [4]byte{'B', 'S', 'D', 'T'}

// Version is the current binary format version.
const Version = 1

// ErrBadHeader is returned by NewReader when the stream does not start
// with a valid trace header.
var ErrBadHeader = errors.New("trace: bad header")

// Writer encodes events to an underlying stream in the binary format.
type Writer struct {
	w     *bufio.Writer
	prev  Time
	count int64
	buf   [binary.MaxVarintLen64]byte
	begun bool
	err   error
}

// NewWriter creates a Writer. The header is written on the first event so
// that creating a writer is infallible.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

func (w *Writer) varint(x int64) {
	if w.err != nil {
		return
	}
	n := binary.PutVarint(w.buf[:], x)
	_, w.err = w.w.Write(w.buf[:n])
}

func (w *Writer) uvarint(x uint64) {
	if w.err != nil {
		return
	}
	n := binary.PutUvarint(w.buf[:], x)
	_, w.err = w.w.Write(w.buf[:n])
}

// Write encodes one event. Events should be presented in non-decreasing
// time order; out-of-order events are still encoded correctly (the time
// delta is signed) but most consumers require ordered streams.
func (w *Writer) Write(e Event) error {
	if w.err != nil {
		return w.err
	}
	if !e.Kind.Valid() {
		return fmt.Errorf("trace: cannot encode event of kind %v", e.Kind)
	}
	if !w.begun {
		if _, w.err = w.w.Write(magic[:]); w.err != nil {
			return w.err
		}
		if w.err = w.w.WriteByte(Version); w.err != nil {
			return w.err
		}
		w.begun = true
	}
	if w.err = w.w.WriteByte(byte(e.Kind)); w.err != nil {
		return w.err
	}
	w.varint(int64(e.Time - w.prev))
	w.prev = e.Time
	switch e.Kind {
	case KindCreate, KindOpen:
		w.uvarint(uint64(e.OpenID))
		w.uvarint(uint64(e.File))
		w.uvarint(uint64(e.User))
		w.uvarint(uint64(e.Mode))
		w.varint(e.Size)
	case KindClose:
		w.uvarint(uint64(e.OpenID))
		w.varint(e.NewPos)
	case KindSeek:
		w.uvarint(uint64(e.OpenID))
		w.varint(e.OldPos)
		w.varint(e.NewPos)
	case KindUnlink:
		w.uvarint(uint64(e.File))
	case KindTruncate:
		w.uvarint(uint64(e.File))
		w.varint(e.Size)
	case KindExec:
		w.uvarint(uint64(e.File))
		w.uvarint(uint64(e.User))
		w.varint(e.Size)
	}
	if w.err == nil {
		w.count++
	}
	return w.err
}

// Count returns the number of events successfully written.
func (w *Writer) Count() int64 { return w.count }

// Flush writes any buffered data to the underlying stream. An empty trace
// still gets a header so that readers can distinguish "empty trace" from
// "not a trace".
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if !w.begun {
		if _, w.err = w.w.Write(magic[:]); w.err != nil {
			return w.err
		}
		if w.err = w.w.WriteByte(Version); w.err != nil {
			return w.err
		}
		w.begun = true
	}
	w.err = w.w.Flush()
	return w.err
}

// Reader decodes events from a binary trace stream.
type Reader struct {
	r    *bufio.Reader
	prev Time
}

// NewReader creates a Reader, consuming and checking the header.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHeader, err)
	}
	if [4]byte(hdr[:4]) != magic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadHeader, hdr[:4])
	}
	if hdr[4] != Version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadHeader, hdr[4])
	}
	return &Reader{r: br}, nil
}

// Next returns the next event, or io.EOF at a clean end of stream. Any
// truncation mid-record is reported as io.ErrUnexpectedEOF.
func (r *Reader) Next() (Event, error) {
	kindByte, err := r.r.ReadByte()
	if err != nil {
		if err == io.EOF {
			return Event{}, io.EOF
		}
		return Event{}, err
	}
	var e Event
	e.Kind = Kind(kindByte)
	if !e.Kind.Valid() {
		return Event{}, fmt.Errorf("trace: corrupt stream: kind byte %d", kindByte)
	}
	dt, err := r.varint()
	if err != nil {
		return Event{}, err
	}
	e.Time = r.prev + Time(dt)
	r.prev = e.Time
	switch e.Kind {
	case KindCreate, KindOpen:
		var open, file, user, mode uint64
		if open, err = r.uvarint(); err == nil {
			if file, err = r.uvarint(); err == nil {
				if user, err = r.uvarint(); err == nil {
					if mode, err = r.uvarint(); err == nil {
						e.Size, err = r.varint()
					}
				}
			}
		}
		e.OpenID, e.File, e.User, e.Mode = OpenID(open), FileID(file), UserID(user), Mode(mode)
	case KindClose:
		var open uint64
		if open, err = r.uvarint(); err == nil {
			e.NewPos, err = r.varint()
		}
		e.OpenID = OpenID(open)
	case KindSeek:
		var open uint64
		if open, err = r.uvarint(); err == nil {
			if e.OldPos, err = r.varint(); err == nil {
				e.NewPos, err = r.varint()
			}
		}
		e.OpenID = OpenID(open)
	case KindUnlink:
		var file uint64
		file, err = r.uvarint()
		e.File = FileID(file)
	case KindTruncate:
		var file uint64
		if file, err = r.uvarint(); err == nil {
			e.Size, err = r.varint()
		}
		e.File = FileID(file)
	case KindExec:
		var file, user uint64
		if file, err = r.uvarint(); err == nil {
			if user, err = r.uvarint(); err == nil {
				e.Size, err = r.varint()
			}
		}
		e.File, e.User = FileID(file), UserID(user)
	}
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Event{}, fmt.Errorf("trace: corrupt stream: %w", err)
	}
	return e, nil
}

func (r *Reader) varint() (int64, error) { return binary.ReadVarint(r.r) }

func (r *Reader) uvarint() (uint64, error) { return binary.ReadUvarint(r.r) }

// ReadAll decodes the remainder of the stream — everything not yet
// consumed by Next — into one in-memory slice. It exists for tests and
// small traces; scale-sensitive consumers should instead pull events one
// at a time through Next (a Reader is a Source) so the trace never has to
// fit in memory. See analyzer.AnalyzeSource and xfer.BuildTape.
func (r *Reader) ReadAll() ([]Event, error) {
	var out []Event
	for {
		e, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}

// WriteFile encodes events to a file in the binary format.
func WriteFile(path string, events []Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := NewWriter(f)
	for _, e := range events {
		if err := w.Write(e); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile decodes an entire binary trace file into memory.
func ReadFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := NewReader(f)
	if err != nil {
		return nil, err
	}
	return r.ReadAll()
}
