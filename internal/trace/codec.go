package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// The binary trace file format is a 5-byte header ("BSDT" plus a version
// byte) followed by one variable-length record per event:
//
//	kind      1 byte
//	Δtime     signed varint, milliseconds since the previous event
//	fields    per-kind varints, in the field order of Table II
//
// Delta-encoded times and varint fields keep trace files small; the 1985
// tracer had the same concern (§3: "Our main concern in gathering file
// system trace information was the volume of data").
//
// Version 2 keeps the record encoding bit-for-bit and adds periodic
// resync checkpoints between records — see checkpoint.go. A version-2
// reader verifies each segment against its checkpoint CRC before
// emitting any of its events, and on corruption skips forward to the
// next checkpoint instead of aborting, so one damaged region costs one
// segment, not the rest of the trace.

var magic = [4]byte{'B', 'S', 'D', 'T'}

// Version is the original binary format version, still the default for
// every writer: the golden report path depends on byte-identical v1
// output.
const Version = 1

// Version2 is the checkpointed format version (see checkpoint.go).
const Version2 = 2

// ErrBadHeader is returned by NewReader when the stream does not start
// with a valid trace header.
var ErrBadHeader = errors.New("trace: bad header")

// Writer encodes events to an underlying stream in the binary format.
type Writer struct {
	w     *bufio.Writer
	prev  Time
	count int64
	buf   [binary.MaxVarintLen64]byte
	begun bool
	err   error

	// Version-2 checkpoint state. version is 1 or 2; the segment fields
	// track the records written since the last checkpoint.
	version    byte
	ckInterval int
	segCRC     uint32
	segBytes   int64
	segRecords int

	// resumed marks a writer continuing a logical stream from a nonzero
	// record index (NewResumedWriterV2): the header is followed by an
	// immediate checkpoint carrying the resume position, which a fresh
	// reader uses to restore the absolute time and record index — and to
	// account the records it never saw as skipped.
	resumed bool
}

// NewWriter creates a version-1 Writer. The header is written on the
// first event so that creating a writer is infallible.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), version: Version}
}

// NewWriterV2 creates a Writer emitting the version-2 checkpointed
// framing: a resync checkpoint every interval records (and one final
// checkpoint at Flush, so every record is covered by a CRC). interval <=
// 0 selects DefaultCheckpointInterval. Record bytes are identical to
// version 1; only the header version byte and the checkpoints differ.
func NewWriterV2(w io.Writer, interval int) *Writer {
	if interval <= 0 {
		interval = DefaultCheckpointInterval
	}
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), version: Version2, ckInterval: interval}
}

// recordBytes writes raw record bytes, folding them into the segment CRC
// when the checkpointed format is active.
func (w *Writer) recordBytes(p []byte) {
	if w.err != nil {
		return
	}
	if _, w.err = w.w.Write(p); w.err != nil {
		return
	}
	if w.version == Version2 {
		w.segCRC = crc32.Update(w.segCRC, crc32.IEEETable, p)
		w.segBytes += int64(len(p))
	}
}

func (w *Writer) varint(x int64) {
	n := binary.PutVarint(w.buf[:], x)
	w.recordBytes(w.buf[:n])
}

func (w *Writer) uvarint(x uint64) {
	n := binary.PutUvarint(w.buf[:], x)
	w.recordBytes(w.buf[:n])
}

func (w *Writer) header() error {
	if w.begun || w.err != nil {
		return w.err
	}
	if _, w.err = w.w.Write(magic[:]); w.err != nil {
		return w.err
	}
	if w.err = w.w.WriteByte(w.version); w.err != nil {
		return w.err
	}
	w.begun = true
	if w.resumed {
		// The resume checkpoint: an empty segment whose recordIdx and
		// absTime are the resume position. A reader joining here resyncs
		// off it exactly as it would off a mid-stream join, with the
		// pre-resume records counted in its SkipStats.
		w.writeCheckpoint()
	}
	return nil
}

// Write encodes one event. Events should be presented in non-decreasing
// time order; out-of-order events are still encoded correctly (the time
// delta is signed) but most consumers require ordered streams.
func (w *Writer) Write(e Event) error {
	if w.err != nil {
		return w.err
	}
	if !e.Kind.Valid() {
		return fmt.Errorf("trace: cannot encode event of kind %v", e.Kind)
	}
	if err := w.header(); err != nil {
		return err
	}
	w.recordBytes([]byte{byte(e.Kind)})
	w.varint(int64(e.Time - w.prev))
	w.prev = e.Time
	switch e.Kind {
	case KindCreate, KindOpen:
		w.uvarint(uint64(e.OpenID))
		w.uvarint(uint64(e.File))
		w.uvarint(uint64(e.User))
		w.uvarint(uint64(e.Mode))
		w.varint(e.Size)
	case KindClose:
		w.uvarint(uint64(e.OpenID))
		w.varint(e.NewPos)
	case KindSeek:
		w.uvarint(uint64(e.OpenID))
		w.varint(e.OldPos)
		w.varint(e.NewPos)
	case KindUnlink:
		w.uvarint(uint64(e.File))
	case KindTruncate:
		w.uvarint(uint64(e.File))
		w.varint(e.Size)
	case KindExec:
		w.uvarint(uint64(e.File))
		w.uvarint(uint64(e.User))
		w.varint(e.Size)
	}
	if w.err == nil {
		w.count++
		if w.version == Version2 {
			w.segRecords++
			if w.segRecords >= w.ckInterval {
				w.writeCheckpoint()
			}
		}
	}
	return w.err
}

// Count returns the number of events successfully written.
func (w *Writer) Count() int64 { return w.count }

// Flush writes any buffered data to the underlying stream. An empty trace
// still gets a header so that readers can distinguish "empty trace" from
// "not a trace". A version-2 writer first seals any open segment with a
// checkpoint, so a flushed stream is verifiable end to end.
func (w *Writer) Flush() error {
	if err := w.header(); err != nil {
		return err
	}
	if w.version == Version2 && w.segRecords > 0 {
		w.writeCheckpoint()
	}
	if w.err == nil {
		w.err = w.w.Flush()
	}
	return w.err
}

// Reader decodes events from a binary trace stream, version 1 or 2.
//
// A version-2 reader buffers each segment and verifies it against its
// checkpoint CRC before emitting any event; on CRC mismatch or
// undecodable bytes it discards the segment, scans forward to the next
// checkpoint, restores the delta-decoding state from the checkpoint's
// absolute snapshot, and continues. Skipped() reports what was lost.
// A version-1 reader fails fast exactly as before, now with record and
// byte-offset context on every error.
type Reader struct {
	r       *posReader
	prev    Time
	version byte
	// index is the absolute record index of the next event to return;
	// after a version-2 resync it realigns to the writer-side index
	// recorded in the checkpoint.
	index int64

	// Version-2 segment state: events decoded but not yet verified or
	// emitted, and the running skip accounting.
	seg    []Event
	segPos int
	skip   SkipStats
	eof    bool

	// pendErr is a stream-end or decode error encountered while a
	// NextBatch call had already decoded events: the partial batch went
	// out clean and the error waits here for the following call.
	pendErr error
	// fail is the reader's terminal non-EOF error. Once set, every
	// further call repeats it: a stream that failed to decode must
	// never be mistaken for one that ended cleanly, no matter how many
	// times a consumer retries.
	fail error
}

// fatal records a non-EOF error as the reader's sticky terminal state
// and passes err through either way.
func (r *Reader) fatal(err error) error {
	if err != nil && err != io.EOF {
		r.fail = err
	}
	return err
}

// SkipStats reports what a self-healing version-2 reader could not turn
// into events: corrupt or unverifiable regions it skipped.
type SkipStats struct {
	// Bytes is the count of stream bytes consumed without emitting
	// events: corrupt segments (including their checkpoints), scanned
	// garbage, and unverified truncated tails.
	Bytes int64
	// Records is a best-effort estimate of the records lost, from
	// checkpoint record indices where available and from decoded-but-
	// unverified counts otherwise.
	Records int64
	// Segments is the number of discarded segments (resync operations).
	Segments int64
}

// Zero reports whether nothing was skipped — the stream was ingested in
// full.
func (s SkipStats) Zero() bool { return s == SkipStats{} }

func (s SkipStats) String() string {
	return fmt.Sprintf("%d bytes, ~%d records, %d segments skipped", s.Bytes, s.Records, s.Segments)
}

// posReader is a byte reader that tracks the absolute stream offset and
// an optional running CRC32 of the bytes read (used for version-2
// segment verification).
type posReader struct {
	br    *bufio.Reader
	off   int64
	crc   uint32
	crcOn bool
}

func (p *posReader) ReadByte() (byte, error) {
	b, err := p.br.ReadByte()
	if err != nil {
		return 0, err
	}
	p.off++
	if p.crcOn {
		p.crc = crc32.Update(p.crc, crc32.IEEETable, []byte{b})
	}
	return b, nil
}

// NewReader creates a Reader, consuming and checking the header. Version
// 1 and version 2 streams are both accepted.
func NewReader(r io.Reader) (*Reader, error) {
	p := &posReader{br: bufio.NewReaderSize(r, 1<<16)}
	var hdr [5]byte
	for i := range hdr {
		b, err := p.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadHeader, err)
		}
		hdr[i] = b
	}
	if [4]byte(hdr[:4]) != magic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadHeader, hdr[:4])
	}
	if hdr[4] != Version && hdr[4] != Version2 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadHeader, hdr[4])
	}
	rd := &Reader{r: p, version: hdr[4]}
	rd.r.crcOn = rd.version == Version2
	return rd, nil
}

// Version returns the stream's format version (1 or 2).
func (r *Reader) Version() int { return int(r.version) }

// Skipped returns the reader's self-healing accounting. It is always
// zero for a version-1 stream (which fails fast instead) and for an
// undamaged version-2 stream; a caller that requires complete ingestion
// must check it after draining the stream.
func (r *Reader) Skipped() SkipStats { return r.skip }

// Next returns the next event, or io.EOF at a clean end of stream. Any
// truncation mid-record is reported as io.ErrUnexpectedEOF. Decode
// errors carry the failing record's index and byte offset.
func (r *Reader) Next() (Event, error) {
	if r.fail != nil {
		return Event{}, r.fail
	}
	if r.pendErr != nil {
		err := r.pendErr
		r.pendErr = nil
		return Event{}, r.fatal(err)
	}
	if r.version == Version2 {
		e, err := r.nextV2()
		return e, r.fatal(err)
	}
	recStart := r.r.off
	kindByte, err := r.r.ReadByte()
	if err != nil {
		if err == io.EOF {
			return Event{}, io.EOF
		}
		return Event{}, r.fatal(r.recordErr(recStart, err))
	}
	e, err := r.decodeBody(kindByte)
	if err != nil {
		return Event{}, r.fatal(r.recordErr(recStart, err))
	}
	r.index++
	return e, nil
}

// recordErr wraps a decode error with the failing record's index and the
// byte offset where the record started.
func (r *Reader) recordErr(recStart int64, err error) error {
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return fmt.Errorf("trace: record %d at offset %d: corrupt stream: %w", r.index, recStart, err)
}

// errBadKind is the inner error for an invalid kind byte; recordErr adds
// the position context.
type errBadKind byte

func (e errBadKind) Error() string { return fmt.Sprintf("kind byte %d", byte(e)) }

// decodeBody decodes one record given its already-consumed kind byte,
// advancing the delta-time state. It is shared by the version-1 fast
// path and the version-2 segment loop.
func (r *Reader) decodeBody(kindByte byte) (Event, error) {
	var e Event
	e.Kind = Kind(kindByte)
	if !e.Kind.Valid() {
		return Event{}, errBadKind(kindByte)
	}
	dt, err := r.varint()
	if err != nil {
		return Event{}, err
	}
	e.Time = r.prev + Time(dt)
	r.prev = e.Time
	switch e.Kind {
	case KindCreate, KindOpen:
		var open, file, user, mode uint64
		if open, err = r.uvarint(); err == nil {
			if file, err = r.uvarint(); err == nil {
				if user, err = r.uvarint(); err == nil {
					if mode, err = r.uvarint(); err == nil {
						e.Size, err = r.varint()
					}
				}
			}
		}
		e.OpenID, e.File, e.User, e.Mode = OpenID(open), FileID(file), UserID(user), Mode(mode)
	case KindClose:
		var open uint64
		if open, err = r.uvarint(); err == nil {
			e.NewPos, err = r.varint()
		}
		e.OpenID = OpenID(open)
	case KindSeek:
		var open uint64
		if open, err = r.uvarint(); err == nil {
			if e.OldPos, err = r.varint(); err == nil {
				e.NewPos, err = r.varint()
			}
		}
		e.OpenID = OpenID(open)
	case KindUnlink:
		var file uint64
		file, err = r.uvarint()
		e.File = FileID(file)
	case KindTruncate:
		var file uint64
		if file, err = r.uvarint(); err == nil {
			e.Size, err = r.varint()
		}
		e.File = FileID(file)
	case KindExec:
		var file, user uint64
		if file, err = r.uvarint(); err == nil {
			if user, err = r.uvarint(); err == nil {
				e.Size, err = r.varint()
			}
		}
		e.File, e.User = FileID(file), UserID(user)
	}
	if err != nil {
		return Event{}, err
	}
	return e, nil
}

func (r *Reader) varint() (int64, error) { return binary.ReadVarint(r.r) }

func (r *Reader) uvarint() (uint64, error) { return binary.ReadUvarint(r.r) }

// ReadAll decodes the remainder of the stream — everything not yet
// consumed by Next — into one in-memory slice. It exists for tests and
// small traces; scale-sensitive consumers should instead pull events one
// at a time through Next (a Reader is a Source) so the trace never has to
// fit in memory. See analyzer.AnalyzeSource and xfer.BuildTape.
func (r *Reader) ReadAll() ([]Event, error) {
	var out []Event
	for {
		e, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}

// WriteFile encodes events to a file in the binary format.
func WriteFile(path string, events []Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := NewWriter(f)
	for _, e := range events {
		if err := w.Write(e); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile decodes an entire binary trace file into memory.
func ReadFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := NewReader(f)
	if err != nil {
		return nil, err
	}
	return r.ReadAll()
}
