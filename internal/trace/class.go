package trace

// Class is the taxonomy of trace sources, following the replay-trace
// classification literature: what level of the storage stack a trace
// was captured at determines which analyses its events can feed.
//
//   - A logical-level trace records file-system operations with their
//     open/seek/close structure (the paper's Table II vocabulary). Every
//     Section-5 reference-pattern metric is defined on it.
//   - A block-level trace records raw device requests (offset, size,
//     direction). There are no opens, no users, no file lifetimes: only
//     the transfer-level metrics — block I/O rates and the Section-6
//     cache simulations — are meaningful.
//   - A page-reference trace is a block trace degenerated further: a
//     bare reference string of fixed-size pages with synthesized time.
//
// Foreign-trace adapters (internal/trace/adapt) re-encode block- and
// page-class records into the native event vocabulary — one short
// open/seek/close sequence per request, so the xfer scanner reconstructs
// exactly the foreign transfers — but the class still travels with the
// source: the analyzer's metric sets check it before rendering, so a
// block trace can never produce a silently meaningless Table V.
type Class uint8

// The trace classes, from most to least structured.
const (
	// ClassLogical is a full logical-level trace: open/close sessions,
	// seeks, users, file births and deaths.
	ClassLogical Class = iota
	// ClassBlock is a device-level request trace: transfers only.
	ClassBlock
	// ClassPage is a page reference string: fixed-size transfers with
	// synthesized time.
	ClassPage
	numClasses
)

var classNames = [...]string{
	ClassLogical: "logical",
	ClassBlock:   "block",
	ClassPage:    "page",
}

// String returns the class name used in reports and error messages.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "class(?)"
}

// Valid reports whether c is a defined class.
func (c Class) Valid() bool { return c < numClasses }

// ClassedSource is a Source that knows which trace class it carries.
// Foreign-trace adapters implement it; native sources do not need to,
// because the native format is logical by construction.
type ClassedSource interface {
	Source
	Class() Class
}

// SourceClass returns the class a source declares, defaulting to
// ClassLogical for sources that predate the taxonomy (every native
// source: readers, merges, shard streams, fan-out legs).
func SourceClass(src Source) Class {
	if cs, ok := src.(ClassedSource); ok {
		return cs.Class()
	}
	return ClassLogical
}
