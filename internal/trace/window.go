package trace

// Window extracts the sub-trace in [from, to), fixing up the dangling
// references that cutting a live stream creates: seeks and closes whose
// open fell before the window are dropped (their open ids are unknown
// inside the window, exactly as if the tracer had started at that moment),
// and times are rebased so the window starts at zero.
//
// Windowing is how peak-hour analyses are carved from long traces; the
// paper's measurements distinguish "the busiest part of the work week"
// from whole-trace averages the same way.
func Window(events []Event, from, to Time) []Event {
	if to <= from {
		return nil
	}
	var out []Event
	open := make(map[OpenID]bool)
	for _, e := range events {
		if e.Time < from || e.Time >= to {
			continue
		}
		switch e.Kind {
		case KindCreate, KindOpen:
			open[e.OpenID] = true
		case KindClose:
			if !open[e.OpenID] {
				continue // opened before the window
			}
			delete(open, e.OpenID)
		case KindSeek:
			if !open[e.OpenID] {
				continue
			}
		}
		e.Time -= from
		out = append(out, e)
	}
	return out
}
