package trace

// Window extracts the sub-trace in [from, to), fixing up the dangling
// references that cutting a live stream creates: seeks and closes whose
// open fell before the window are dropped (their open ids are unknown
// inside the window, exactly as if the tracer had started at that moment),
// and times are rebased so the window starts at zero.
//
// Windowing is how peak-hour analyses are carved from long traces; the
// paper's measurements distinguish "the busiest part of the work week"
// from whole-trace averages the same way.
func Window(events []Event, from, to Time) []Event {
	if to <= from {
		return nil
	}
	out, _ := ReadSource(WindowSource(NewSliceSource(events), from, to))
	return out
}
