// Package adapttest is the conformance suite for foreign-trace
// adapters. Every adapter first satisfies the general trace.Source
// contract (via the shared sourcetest suite), then the adapter laws
// stated in package adapt's documentation:
//
//   - the emitted stream is in non-decreasing time order (foreign
//     timestamps that run backwards are clamped, never reordered);
//   - the emitted event kinds are consistent with the declared class:
//     block and page traces have no logical structure, so they may only
//     produce open, seek, and close events;
//   - parsing is deterministic: two independent passes over the same
//     bytes yield DeepEqual event streams and identical statistics;
//   - the stream is well-formed: a strict trace.Validator accepts it
//     with no complaints;
//   - the statistics add up: every input line is accounted as a record
//     or a skip.
package adapttest

import (
	"io"
	"reflect"
	"testing"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/trace/adapt"
	"bsdtrace/internal/trace/sourcetest"
)

// Factory builds a fresh adapter positioned at the start of the same
// input bytes. It is called many times; each instance must observe an
// identical foreign trace.
type Factory func(t *testing.T) adapt.Source

// Run drives one adapter through the sourcetest contract and the
// adapter laws.
func Run(t *testing.T, mk Factory) {
	t.Helper()

	// One reference drain defines the expected stream for everything
	// else, including the sourcetest equality checks.
	ref, refStats := drain(t, mk(t))

	sourcetest.Run(t, func(t *testing.T) trace.Source { return mk(t) }, ref)

	t.Run("monotone-time", func(t *testing.T) {
		for i := 1; i < len(ref); i++ {
			if ref[i].Time < ref[i-1].Time {
				t.Fatalf("event %d at t=%v after event %d at t=%v: time ran backwards",
					i, ref[i].Time, i-1, ref[i-1].Time)
			}
		}
	})

	t.Run("class-consistent-kinds", func(t *testing.T) {
		src := mk(t)
		class := src.Class()
		if !class.Valid() {
			t.Fatalf("adapter declares invalid class %v", class)
		}
		for i, e := range ref {
			if !e.Kind.Valid() {
				t.Fatalf("event %d has invalid kind %v", i, e.Kind)
			}
			if class == trace.ClassLogical {
				continue
			}
			// Block and page records re-encode as pure transfer triples.
			switch e.Kind {
			case trace.KindOpen, trace.KindSeek, trace.KindClose:
			default:
				t.Fatalf("event %d is %v: class %v sources may only emit open/seek/close",
					i, e.Kind, class)
			}
		}
	})

	t.Run("deterministic-reparse", func(t *testing.T) {
		again, againStats := drain(t, mk(t))
		if !reflect.DeepEqual(again, ref) {
			t.Fatalf("second parse yielded a different stream: %d events vs %d", len(again), len(ref))
		}
		if againStats != refStats {
			t.Fatalf("second parse stats = %+v, want %+v", againStats, refStats)
		}
	})

	t.Run("stable-class", func(t *testing.T) {
		a, b := mk(t), mk(t)
		if a.Class() != b.Class() {
			t.Fatalf("class differs between instances: %v vs %v", a.Class(), b.Class())
		}
		if got := trace.SourceClass(a); got != a.Class() {
			t.Fatalf("trace.SourceClass = %v, want declared %v", got, a.Class())
		}
	})

	t.Run("valid-stream", func(t *testing.T) {
		v := trace.NewValidator(5)
		for _, e := range ref {
			v.Check(e)
		}
		v.Finish()
		if errs := v.Errs(); len(errs) > 0 {
			t.Fatalf("emitted stream fails strict validation: %v", errs[0])
		}
	})

	t.Run("stats-identity", func(t *testing.T) {
		if refStats.Lines != refStats.Records+refStats.Skipped+refStats.SkippedReads {
			t.Fatalf("stats don't add up: %+v (want Lines = Records + Skipped + SkippedReads)", refStats)
		}
		if refStats.Events != int64(len(ref)) {
			t.Fatalf("stats report %d events, drained %d", refStats.Events, len(ref))
		}
	})
}

// drain pulls an adapter to EOF and returns the stream and final stats.
func drain(t *testing.T, src adapt.Source) ([]trace.Event, adapt.Stats) {
	t.Helper()
	var got []trace.Event
	for {
		e, err := src.Next()
		if err == io.EOF {
			return got, src.Stats()
		}
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
		got = append(got, e)
	}
}
