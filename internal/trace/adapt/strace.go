package adapt

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"bsdtrace/internal/trace"
)

// Strace-shaped syscall logs carry real logical structure, so unlike the
// block formats they translate almost one-to-one into the native
// vocabulary:
//
//	open/openat/creat  ->  open or create (fd return value starts a session)
//	read/write         ->  no event: the implicit position advances by the
//	                       return value, exactly the paper's no-read-write
//	                       model; the bytes surface through later seek and
//	                       close positions
//	pread64/pwrite64   ->  a synthesized seek when the offset differs from
//	                       the implicit position, then a positional advance
//	lseek              ->  seek (the return value is the new absolute position)
//	close              ->  close with the final implicit position
//	unlink/unlinkat    ->  unlink (the path's current file incarnation dies)
//	truncate/ftruncate ->  truncate
//	execve             ->  execve
//
// Lines the adapter cannot use — signal deliveries, process exits,
// unfinished/resumed split lines, unknown syscalls, failed calls, and
// operations on fds it never saw opened (a log usually starts with
// stdin/stdout already open) — are skipped and counted, never fatal.
// Lines that name a handled syscall but do not parse are fatal: they
// mean the log is damaged, not merely chatty.
//
// Paths map to FileIDs in first-appearance order; an unlink retires the
// incarnation, so re-creating the path allocates a fresh FileID (native
// FileIDs are never reused). Pids map to UserIDs the same way. File
// sizes are learned from observed positions, so a later open records a
// useful size-at-open.

// Syscall is one parsed strace line for a handled syscall. Token fields
// (When, Buf, Flags, Whence, Err) are kept verbatim so String can
// re-render the line and re-parsing yields an identical Syscall (the
// fuzz round-trip law).
type Syscall struct {
	// Pid is the leading process id, or -1 when the log has none.
	Pid int64
	// When is the verbatim timestamp token ("14:32:05.123456" or
	// "1700000000.123456"), empty when the log has none.
	When string
	// Name is the syscall name ("openat", "read", ...).
	Name string
	// Path is the quoted path argument, without quotes, escapes kept
	// verbatim (open family, unlink family, truncate, execve).
	Path string
	// FD is the file-descriptor argument, or -1 when the call has none.
	FD int64
	// Buf is the verbatim buffer argument of read/write/pread64/pwrite64
	// (usually a quoted excerpt or "...").
	Buf string
	// Flags is the verbatim argument tail after the path: open flags and
	// mode, creat mode, unlinkat flags, execve argv+envp.
	Flags string
	// Count is the byte-count argument of read/write/pread64/pwrite64.
	Count int64
	// Offset is the offset argument of lseek/pread64/pwrite64 and the
	// length argument of truncate/ftruncate.
	Offset int64
	// Whence is the verbatim lseek whence token ("SEEK_SET", ...).
	Whence string
	// Ret is the return value; negative means the call failed.
	Ret int64
	// Err is the verbatim tail after the return value, usually the errno
	// name and description of a failed call.
	Err string
}

// String renders the syscall back into an strace line. The arguments
// are laid out per syscall name, matching what ParseStraceLine consumed.
func (s Syscall) String() string {
	var b strings.Builder
	if s.Pid >= 0 {
		fmt.Fprintf(&b, "%d  ", s.Pid)
	}
	if s.When != "" {
		b.WriteString(s.When)
		b.WriteByte(' ')
	}
	b.WriteString(s.Name)
	b.WriteByte('(')
	// Paths render verbatim between quotes (not %q): the parser kept the
	// original escapes, and re-escaping them would break the round trip.
	quoted := func(path string) string { return `"` + path + `"` }
	switch s.Name {
	case "open", "creat":
		b.WriteString(quoted(s.Path))
		if s.Flags != "" {
			b.WriteString(", ")
			b.WriteString(s.Flags)
		}
	case "openat":
		b.WriteString("AT_FDCWD, ")
		b.WriteString(quoted(s.Path))
		if s.Flags != "" {
			b.WriteString(", ")
			b.WriteString(s.Flags)
		}
	case "read", "write":
		fmt.Fprintf(&b, "%d, %s, %d", s.FD, s.Buf, s.Count)
	case "pread64", "pwrite64":
		fmt.Fprintf(&b, "%d, %s, %d, %d", s.FD, s.Buf, s.Count, s.Offset)
	case "lseek":
		fmt.Fprintf(&b, "%d, %d, %s", s.FD, s.Offset, s.Whence)
	case "close":
		fmt.Fprintf(&b, "%d", s.FD)
	case "unlink":
		b.WriteString(quoted(s.Path))
	case "unlinkat":
		b.WriteString("AT_FDCWD, ")
		b.WriteString(quoted(s.Path))
		if s.Flags != "" {
			b.WriteString(", ")
			b.WriteString(s.Flags)
		}
	case "truncate":
		fmt.Fprintf(&b, "%s, %d", quoted(s.Path), s.Offset)
	case "ftruncate":
		fmt.Fprintf(&b, "%d, %d", s.FD, s.Offset)
	case "execve":
		b.WriteString(quoted(s.Path))
		if s.Flags != "" {
			b.WriteString(", ")
			b.WriteString(s.Flags)
		}
	}
	fmt.Fprintf(&b, ") = %d", s.Ret)
	if s.Err != "" {
		b.WriteByte(' ')
		b.WriteString(s.Err)
	}
	return b.String()
}

// ParseStraceLine parses one strace output line. ok is false for lines
// the adapter ignores by design (blanks, signals, exits, split lines,
// unknown syscalls, detached "?" returns); err is non-nil for lines
// that name a handled syscall but are damaged.
func ParseStraceLine(line string) (s Syscall, ok bool, err error) {
	s = Syscall{Pid: -1, FD: -1}
	rest := strings.TrimSpace(line)
	switch {
	case rest == "",
		strings.HasPrefix(rest, "---"), // signal delivery
		strings.HasPrefix(rest, "+++"), // process exit
		strings.Contains(rest, "<unfinished"),
		strings.Contains(rest, "resumed>"):
		return Syscall{}, false, nil
	}

	// Leading pid (bare integer token), then optional timestamp token.
	if tok, tail, found := cutToken(rest); found && isAllDigits(tok) {
		s.Pid, _ = strconv.ParseInt(tok, 10, 64)
		rest = tail
	}
	if tok, tail, found := cutToken(rest); found && isTimeToken(tok) {
		if _, terr := parseStraceTime(tok); terr != nil {
			return Syscall{}, false, fmt.Errorf("adapt: bad timestamp %q in %q", tok, line)
		}
		s.When = tok
		rest = tail
	}

	paren := strings.IndexByte(rest, '(')
	if paren <= 0 {
		return Syscall{}, false, fmt.Errorf("adapt: not a syscall line: %q", line)
	}
	s.Name = rest[:paren]
	if !isIdentifier(s.Name) {
		return Syscall{}, false, fmt.Errorf("adapt: bad syscall name %q in %q", s.Name, line)
	}
	if !handledSyscalls[s.Name] {
		return Syscall{}, false, nil
	}

	argStr, tail, aerr := scanArgs(rest[paren+1:])
	if aerr != nil {
		return Syscall{}, false, fmt.Errorf("adapt: %s in %q", aerr, line)
	}
	args := splitArgs(argStr)

	// Return value: ") = ret [errno (description)]".
	tail = strings.TrimSpace(tail)
	retStr, errTail, found := strings.Cut(strings.TrimPrefix(tail, "="), " ")
	if !strings.HasPrefix(tail, "=") {
		return Syscall{}, false, fmt.Errorf("adapt: missing return value in %q", line)
	}
	retStr = strings.TrimSpace(retStr)
	if retStr == "" && found {
		// "=  ret" with extra spaces.
		retStr, errTail, _ = strings.Cut(strings.TrimSpace(errTail), " ")
	}
	if retStr == "?" {
		return Syscall{}, false, nil // detached before return
	}
	s.Ret, err = strconv.ParseInt(retStr, 10, 64)
	if err != nil || s.Ret > maxIOOffset {
		return Syscall{}, false, fmt.Errorf("adapt: bad return value %q in %q", retStr, line)
	}
	s.Err = strings.TrimSpace(errTail)

	if err := s.takeArgs(args); err != nil {
		return Syscall{}, false, fmt.Errorf("adapt: %s in %q", err, line)
	}
	return s, true, nil
}

// handledSyscalls is the set of syscall names the adapter translates.
// Anything else is skipped, not an error: real logs are full of mmap,
// stat, futex, and friends.
var handledSyscalls = map[string]bool{
	"open": true, "openat": true, "creat": true,
	"read": true, "write": true, "pread64": true, "pwrite64": true,
	"lseek": true, "close": true,
	"unlink": true, "unlinkat": true,
	"truncate": true, "ftruncate": true,
	"execve": true,
}

// takeArgs distributes the split argument tokens into the per-name
// fields.
func (s *Syscall) takeArgs(args []string) error {
	need := func(n int) error {
		if len(args) < n {
			return fmt.Errorf("truncated %s: %d args, want at least %d", s.Name, len(args), n)
		}
		return nil
	}
	switch s.Name {
	case "openat", "unlinkat":
		if err := need(2); err != nil {
			return err
		}
		if args[0] != "AT_FDCWD" {
			return fmt.Errorf("unsupported %s dirfd %q", s.Name, args[0])
		}
		args = args[1:]
		fallthrough
	case "open", "creat", "unlink", "execve":
		if err := need(1); err != nil {
			return err
		}
		path, perr := unquote(args[0])
		if perr != nil {
			return fmt.Errorf("bad path %s", perr)
		}
		s.Path = path
		s.Flags = strings.Join(args[1:], ", ")
		if s.Name == "unlink" && s.Flags != "" {
			return fmt.Errorf("trailing unlink args %q", s.Flags)
		}
	case "read", "write", "pread64", "pwrite64":
		n := 3
		if s.Name == "pread64" || s.Name == "pwrite64" {
			n = 4
		}
		if err := need(n); err != nil {
			return err
		}
		if len(args) != n {
			return fmt.Errorf("trailing %s args", s.Name)
		}
		var err error
		if s.FD, err = parseNonNeg(args[0]); err != nil {
			return fmt.Errorf("bad fd %q", args[0])
		}
		s.Buf = args[1]
		if s.Count, err = parseNonNeg(args[2]); err != nil {
			return fmt.Errorf("bad count %q", args[2])
		}
		if n == 4 {
			if s.Offset, err = parseNonNeg(args[3]); err != nil {
				return fmt.Errorf("bad offset %q", args[3])
			}
		}
	case "lseek":
		if err := need(3); err != nil {
			return err
		}
		if len(args) != 3 {
			return fmt.Errorf("trailing lseek args")
		}
		var err error
		if s.FD, err = parseNonNeg(args[0]); err != nil {
			return fmt.Errorf("bad fd %q", args[0])
		}
		if s.Offset, err = strconv.ParseInt(args[1], 10, 64); err != nil || s.Offset > maxIOOffset || s.Offset < -maxIOOffset {
			return fmt.Errorf("bad offset %q", args[1])
		}
		if !isIdentifier(args[2]) && !isAllDigits(args[2]) {
			return fmt.Errorf("bad whence %q", args[2])
		}
		s.Whence = args[2]
	case "close":
		if err := need(1); err != nil {
			return err
		}
		if len(args) != 1 {
			return fmt.Errorf("trailing close args")
		}
		var err error
		if s.FD, err = parseNonNeg(args[0]); err != nil {
			return fmt.Errorf("bad fd %q", args[0])
		}
	case "truncate", "ftruncate":
		if err := need(2); err != nil {
			return err
		}
		if len(args) != 2 {
			return fmt.Errorf("trailing %s args", s.Name)
		}
		var err error
		if s.Name == "truncate" {
			if s.Path, err = unquote(args[0]); err != nil {
				return fmt.Errorf("bad path %s", err)
			}
		} else if s.FD, err = parseNonNeg(args[0]); err != nil {
			return fmt.Errorf("bad fd %q", args[0])
		}
		if s.Offset, err = parseNonNeg(args[1]); err != nil {
			return fmt.Errorf("bad length %q (negative offset?)", args[1])
		}
	}
	return nil
}

// cutToken splits off the first whitespace-delimited token.
func cutToken(s string) (tok, rest string, found bool) {
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, "", false
	}
	return s[:i], strings.TrimLeft(s[i:], " \t"), true
}

func isAllDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// isTimeToken reports a token shaped like a timestamp: digits with at
// least one '.' or ':' (a bare integer at line start is a pid instead).
func isTimeToken(s string) bool {
	if s == "" {
		return false
	}
	punct := false
	for _, c := range s {
		switch {
		case c >= '0' && c <= '9':
		case c == '.' || c == ':':
			punct = true
		default:
			return false
		}
	}
	return punct
}

func isIdentifier(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '_':
		default:
			return false
		}
	}
	return true
}

// parseNonNeg parses a non-negative decimal integer, bounded by the
// byte-quantity sanity cap.
func parseNonNeg(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	if v < 0 {
		return 0, fmt.Errorf("negative value %d", v)
	}
	if v > maxIOOffset {
		return 0, fmt.Errorf("implausible value %d", v)
	}
	return v, nil
}

// parseStraceTime converts a timestamp token to milliseconds: either an
// absolute "seconds.fraction" epoch (strace -ttt) or a wall-clock
// "HH:MM:SS[.fraction]" (strace -t / -tt). Both rebase through the
// timeline, so only differences matter.
func parseStraceTime(tok string) (trace.Time, error) {
	if strings.Contains(tok, ":") {
		parts := strings.Split(tok, ":")
		if len(parts) != 3 {
			return 0, fmt.Errorf("bad clock time %q", tok)
		}
		h, err1 := strconv.ParseInt(parts[0], 10, 64)
		m, err2 := strconv.ParseInt(parts[1], 10, 64)
		sec, err3 := strconv.ParseFloat(parts[2], 64)
		if err1 != nil || err2 != nil || err3 != nil || h < 0 || m > 59 || m < 0 || sec < 0 || sec >= 60 {
			return 0, fmt.Errorf("bad clock time %q", tok)
		}
		return trace.Time((h*60+m)*60_000 + int64(sec*1000+0.5)), nil
	}
	sec, err := strconv.ParseFloat(tok, 64)
	if err != nil || sec < 0 {
		return 0, fmt.Errorf("bad epoch time %q", tok)
	}
	return trace.Time(sec*1000 + 0.5), nil
}

// scanArgs consumes the argument text up to the parenthesis that closes
// the syscall's argument list, tracking quotes (with backslash escapes)
// and bracket nesting, and returns the inside and the tail after ')'.
func scanArgs(s string) (args, tail string, err error) {
	depth := 1
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inQuote {
			switch c {
			case '\\':
				i++ // skip the escaped byte
			case '"':
				inQuote = false
			}
			continue
		}
		switch c {
		case '"':
			inQuote = true
		case '(', '[', '{':
			depth++
		case ')', ']', '}':
			depth--
			if depth == 0 {
				if c != ')' {
					return "", "", fmt.Errorf("unbalanced %q", c)
				}
				return s[:i], s[i+1:], nil
			}
		}
	}
	return "", "", fmt.Errorf("unterminated argument list")
}

// splitArgs splits an argument list on top-level commas, respecting
// quotes and nesting, trimming surrounding space from each piece.
func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []string
	depth := 0
	inQuote := false
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inQuote {
			switch c {
			case '\\':
				i++
			case '"':
				inQuote = false
			}
			continue
		}
		switch c {
		case '"':
			inQuote = true
		case '(', '[', '{':
			depth++
		case ')', ']', '}':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

// unquote strips the surrounding quotes from a path token, keeping any
// escape sequences verbatim (fidelity beats prettiness: the path is an
// opaque identity here).
func unquote(s string) (string, error) {
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("%q: not a quoted string", s)
	}
	body := s[1 : len(s)-1]
	// The closing quote must not itself be escaped, and quotes inside
	// must be: otherwise String()'s re-render would change the token.
	inEsc := false
	for i := 0; i < len(body); i++ {
		if inEsc {
			inEsc = false
			continue
		}
		switch body[i] {
		case '\\':
			inEsc = true
		case '"':
			return "", fmt.Errorf("%q: unescaped quote in string", s)
		}
	}
	if inEsc {
		return "", fmt.Errorf("%q: trailing escape in string", s)
	}
	return body, nil
}

// StraceConfig configures the strace adapter. There are no options yet;
// the zero value is ready to use.
type StraceConfig struct{}

// Strace adapts an strace-shaped syscall log to a trace.Source of class
// ClassLogical.
type Strace struct {
	cfg StraceConfig
	ls  *lineScanner
	em  emitter
	tl  timeline

	paths   map[string]trace.FileID // live path incarnations
	sizes   map[trace.FileID]int64  // learned file sizes
	fds     map[fdKey]*fdState      // open descriptors per pid
	users   map[int64]trace.UserID  // pid -> user
	nextID  uint64                  // file + open id seed
	lastRaw trace.Time              // last parsed raw timestamp
}

type fdKey struct{ pid, fd int64 }

type fdState struct {
	open   trace.OpenID
	file   trace.FileID
	mode   trace.Mode
	pos    int64
	maxPos int64
}

// advance moves the implicit sequential position by one transfer's
// bytes, saturating at the sanity cap so damaged logs with enormous
// return values cannot overflow positions.
func (st *fdState) advance(n int64) {
	st.pos += n
	if st.pos > maxIOOffset {
		st.pos = maxIOOffset
	}
	if st.pos > st.maxPos {
		st.maxPos = st.pos
	}
}

// NewStrace returns a syscall-log adapter reading lines from r.
func NewStrace(r io.Reader, cfg StraceConfig) *Strace {
	return &Strace{
		cfg:   cfg,
		ls:    newLineScanner(r),
		paths: make(map[string]trace.FileID),
		sizes: make(map[trace.FileID]int64),
		fds:   make(map[fdKey]*fdState),
		users: make(map[int64]trace.UserID),
	}
}

// Class reports ClassLogical: syscall logs carry the full open/seek/
// close structure, so every paper metric applies.
func (a *Strace) Class() trace.Class { return trace.ClassLogical }

// Stats returns the ingest accounting so far.
func (a *Strace) Stats() Stats { return a.em.stats }

// Next returns the next native event.
func (a *Strace) Next() (trace.Event, error) {
	for {
		if e, ok := a.em.pop(); ok {
			return e, nil
		}
		if a.em.err != nil {
			return trace.Event{}, a.em.err
		}
		line, n, err := a.ls.next()
		if err != nil {
			return trace.Event{}, a.em.fail(err)
		}
		a.em.stats.Lines++
		call, ok, perr := ParseStraceLine(line)
		if perr != nil {
			a.em.stats.Lines--
			return trace.Event{}, a.em.fail(fmt.Errorf("line %d: %w", n, perr))
		}
		if !ok || call.Ret < 0 {
			a.em.stats.Skipped++ // noise, unknown syscall, or failed call
			continue
		}
		a.ingest(call)
	}
}

// ingest translates one successful handled syscall. State changes with
// no native event (read/write position advances) still count as records.
func (a *Strace) ingest(c Syscall) {
	a.em.stats.Records++
	var t trace.Time
	if c.When != "" {
		a.lastRaw, _ = parseStraceTime(c.When) // validated during parse
	}
	t, clamped := a.tl.clamp(a.lastRaw)
	if clamped {
		a.em.stats.ClampedTimes++
	}
	user := a.userFor(c.Pid)

	switch c.Name {
	case "open", "openat", "creat":
		key := fdKey{c.Pid, c.Ret}
		if old, dup := a.fds[key]; dup {
			// The log missed a close (filtered output); end the stale
			// session so open ids stay well-formed.
			a.closeFD(key, old, t)
		}
		mode := trace.ReadOnly
		switch {
		case c.Name == "creat", strings.Contains(c.Flags, "O_WRONLY"):
			mode = trace.WriteOnly
		case strings.Contains(c.Flags, "O_RDWR"):
			mode = trace.ReadWrite
		}
		file, seen := a.paths[c.Path]
		if !seen {
			a.nextID++
			file = trace.FileID(a.nextID)
			a.paths[c.Path] = file
		}
		// A create is an open that makes the file new: creat, O_TRUNC,
		// or O_CREAT on a path never seen before.
		isCreate := c.Name == "creat" || strings.Contains(c.Flags, "O_TRUNC") ||
			(strings.Contains(c.Flags, "O_CREAT") && !seen)
		a.nextID++
		id := trace.OpenID(a.nextID)
		ev := trace.Event{Time: t, OpenID: id, File: file, User: user, Mode: mode}
		if isCreate {
			ev.Kind = trace.KindCreate
			a.sizes[file] = 0
		} else {
			ev.Kind = trace.KindOpen
			ev.Size = a.sizes[file]
		}
		a.em.push(ev)
		a.fds[key] = &fdState{open: id, file: file, mode: mode}

	case "read", "write":
		st, ok := a.fds[fdKey{c.Pid, c.FD}]
		if !ok {
			a.skipUnknownFD()
			return
		}
		st.advance(c.Ret)

	case "pread64", "pwrite64":
		st, ok := a.fds[fdKey{c.Pid, c.FD}]
		if !ok {
			a.skipUnknownFD()
			return
		}
		if c.Offset != st.pos {
			a.em.push(trace.Event{Time: t, Kind: trace.KindSeek, OpenID: st.open, OldPos: st.pos, NewPos: c.Offset})
			st.pos = c.Offset
		}
		st.advance(c.Ret)

	case "lseek":
		st, ok := a.fds[fdKey{c.Pid, c.FD}]
		if !ok {
			a.skipUnknownFD()
			return
		}
		a.em.push(trace.Event{Time: t, Kind: trace.KindSeek, OpenID: st.open, OldPos: st.pos, NewPos: c.Ret})
		st.pos = c.Ret

	case "close":
		key := fdKey{c.Pid, c.FD}
		st, ok := a.fds[key]
		if !ok {
			a.skipUnknownFD()
			return
		}
		a.closeFD(key, st, t)

	case "unlink", "unlinkat":
		file, seen := a.paths[c.Path]
		if !seen {
			// The file predates the log; its birth and size are unknown,
			// so the death would be meaningless.
			a.skipUnknownFD()
			return
		}
		a.em.push(trace.Event{Time: t, Kind: trace.KindUnlink, File: file})
		delete(a.paths, c.Path) // next create of the path is a new incarnation
		delete(a.sizes, file)

	case "truncate", "ftruncate":
		var file trace.FileID
		if c.Name == "truncate" {
			var seen bool
			if file, seen = a.paths[c.Path]; !seen {
				a.skipUnknownFD()
				return
			}
		} else {
			st, ok := a.fds[fdKey{c.Pid, c.FD}]
			if !ok {
				a.skipUnknownFD()
				return
			}
			file = st.file
		}
		a.em.push(trace.Event{Time: t, Kind: trace.KindTruncate, File: file, Size: c.Offset})
		a.sizes[file] = c.Offset

	case "execve":
		file, seen := a.paths[c.Path]
		if !seen {
			a.nextID++
			file = trace.FileID(a.nextID)
			a.paths[c.Path] = file
		}
		a.em.push(trace.Event{Time: t, Kind: trace.KindExec, File: file, User: user, Size: a.sizes[file]})
	}
}

// skipUnknownFD reclassifies the current record as skipped: the call
// referenced a descriptor or path the log never introduced.
func (a *Strace) skipUnknownFD() {
	a.em.stats.Records--
	a.em.stats.Skipped++
}

// closeFD emits the close event for a descriptor and folds what the
// session revealed into the file-size estimate.
func (a *Strace) closeFD(key fdKey, st *fdState, t trace.Time) {
	a.em.push(trace.Event{Time: t, Kind: trace.KindClose, OpenID: st.open, NewPos: st.pos})
	// Positions are evidence of size: a writer grew the file to at least
	// maxPos; a reader proved at least maxPos bytes exist.
	if st.maxPos > a.sizes[st.file] {
		a.sizes[st.file] = st.maxPos
	}
	delete(a.fds, key)
}

// userFor maps a pid to a UserID in first-appearance order.
func (a *Strace) userFor(pid int64) trace.UserID {
	if u, ok := a.users[pid]; ok {
		return u
	}
	u := trace.UserID(len(a.users) + 1)
	a.users[pid] = u
	return u
}
