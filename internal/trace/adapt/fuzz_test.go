package adapt_test

import (
	"strings"
	"testing"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/trace/adapt"
)

// The parser fuzz law, shared by all three formats: parsing never
// panics, and an accepted record survives a render/re-parse cycle
// unchanged — String() is a faithful inverse of the parser.

func FuzzBlockCSV(f *testing.F) {
	f.Add("128166372003061629,usr,6,Write,2031616,4096,527")
	f.Add("0,h,0,Read,100,5000")
	f.Add("Timestamp,Hostname,DiskNumber,Type,Offset,Size")
	f.Add("1,h,0,read,0,0")
	f.Add("-1,h,0,Read,0,4096")
	f.Add("1,h,0,Read,0,4096,")
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := adapt.ParseBlockCSVLine(line)
		if err != nil {
			return
		}
		again, err := adapt.ParseBlockCSVLine(rec.String())
		if err != nil {
			t.Fatalf("accepted %q -> %q, which does not re-parse: %v", line, rec.String(), err)
		}
		if again != rec {
			t.Fatalf("round trip changed record: %q -> %+v -> %q -> %+v", line, rec, rec.String(), again)
		}
	})
}

func FuzzPageRef(f *testing.F) {
	f.Add("0, 17")
	f.Add("1, 50000")
	f.Add("1,0")
	f.Add("2, 3")
	f.Add("0, -1")
	f.Add("0 17")
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := adapt.ParsePageRefLine(line)
		if err != nil {
			return
		}
		again, err := adapt.ParsePageRefLine(rec.String())
		if err != nil {
			t.Fatalf("accepted %q -> %q, which does not re-parse: %v", line, rec.String(), err)
		}
		if again != rec {
			t.Fatalf("round trip changed record: %q -> %+v -> %q -> %+v", line, rec, rec.String(), again)
		}
	})
}

func FuzzStraceLine(f *testing.F) {
	f.Add(`1234  1700000000.123456 openat(AT_FDCWD, "/etc/passwd", O_RDONLY|O_CLOEXEC) = 3`)
	f.Add(`read(3, "line\n", 4096) = 5`)
	f.Add(`14:32:05.123456 write(4, "x"..., 100) = 100`)
	f.Add(`lseek(3, -10, SEEK_END) = 990`)
	f.Add(`--- SIGCHLD {si_signo=SIGCHLD} ---`)
	f.Add(`open("gone", O_RDONLY) = -1 ENOENT (No such file or directory)`)
	f.Add(`execve("/bin/sh", ["sh", "-c", "ls"], 0x55 /* 10 vars */) = 0`)
	f.Add(`close(3) = ?`)
	f.Add(`pread64(3, "\"", 1, 0) = 1`)
	f.Fuzz(func(t *testing.T, line string) {
		s, ok, err := adapt.ParseStraceLine(line)
		if !ok || err != nil {
			return
		}
		rendered := s.String()
		again, ok, err := adapt.ParseStraceLine(rendered)
		if !ok || err != nil {
			t.Fatalf("accepted %q -> %q, which does not re-parse: ok=%v err=%v", line, rendered, ok, err)
		}
		if again != s {
			t.Fatalf("round trip changed record:\n  line   %q\n  first  %+v\n  render %q\n  second %+v", line, s, rendered, again)
		}
	})
}

// FuzzAdapterStreams drives whole inputs (not single lines) through
// every adapter: Next never panics, terminates, and two passes agree.
func FuzzAdapterStreams(f *testing.F) {
	f.Add("1000,src1,0,Read,0,8192\n1100,src1,0,Write,8192,4096\n")
	f.Add("0, 0\n1, 2\n0, 1\n")
	f.Add("open(\"a\", O_RDONLY) = 3\nread(3, \"\", 100) = 100\nclose(3) = 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		for _, format := range []adapt.Format{adapt.FormatBlockCSV, adapt.FormatPageRef, adapt.FormatStrace} {
			one, err1 := drainLimited(format, input)
			two, err2 := drainLimited(format, input)
			if (err1 == nil) != (err2 == nil) || len(one) != len(two) {
				t.Fatalf("%v: two parses disagree: (%d, %v) vs (%d, %v)", format, len(one), err1, len(two), err2)
			}
			for i := range one {
				if one[i] != two[i] {
					t.Fatalf("%v: event %d differs between passes", format, i)
				}
			}
		}
	})
}

func drainLimited(format adapt.Format, input string) ([]trace.Event, error) {
	src, err := adapt.NewSource(format, strings.NewReader(input))
	if err != nil {
		return nil, err
	}
	var got []trace.Event
	for len(got) < 1<<16 {
		e, err := src.Next()
		if err != nil {
			return got, err
		}
		got = append(got, e)
	}
	return got, nil
}
