package adapt_test

import (
	"strings"
	"testing"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/trace/adapt"
	"bsdtrace/internal/trace/adapt/adapttest"
	"bsdtrace/internal/trace/sourcetest"
	"bsdtrace/internal/xfer"
)

// blockSample exercises a header line, a comment, two devices, an
// unaligned request, and a backwards timestamp in one small input.
const blockSample = `Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
# hand-written sample
1000,src1,0,Read,0,8192,50
1100,src1,0,Write,8192,4096,60
1050,src1,1,Read,4096,4096,70
`

func blockFactory(input string, cfg adapt.BlockCSVConfig) adapttest.Factory {
	return func(t *testing.T) adapt.Source {
		return adapt.NewBlockCSV(strings.NewReader(input), cfg)
	}
}

func TestBlockCSVConformance(t *testing.T) {
	adapttest.Run(t, blockFactory(blockSample, adapt.BlockCSVConfig{}))
}

func TestBlockCSVEvents(t *testing.T) {
	src := adapt.NewBlockCSV(strings.NewReader(blockSample), adapt.BlockCSVConfig{})
	got, err := trace.ReadSource(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []trace.Event{
		// 1000,src1,0,Read,0,8192: time zero, extent grows to 8192, no seek at offset 0.
		{Time: 0, Kind: trace.KindOpen, OpenID: 1, File: 1, User: 1, Mode: trace.ReadOnly, Size: 8192},
		{Time: 0, Kind: trace.KindClose, OpenID: 1, NewPos: 8192},
		// 1100,src1,0,Write,8192,4096: opens at the old extent, extends it.
		{Time: 100, Kind: trace.KindOpen, OpenID: 2, File: 1, User: 1, Mode: trace.WriteOnly, Size: 8192},
		{Time: 100, Kind: trace.KindSeek, OpenID: 2, OldPos: 0, NewPos: 8192},
		{Time: 100, Kind: trace.KindClose, OpenID: 2, NewPos: 12288},
		// 1050,src1,1,Read,4096,4096: second device, backwards time clamped to 100.
		{Time: 100, Kind: trace.KindOpen, OpenID: 3, File: 2, User: 2, Mode: trace.ReadOnly, Size: 8192},
		{Time: 100, Kind: trace.KindSeek, OpenID: 3, OldPos: 0, NewPos: 4096},
		{Time: 100, Kind: trace.KindClose, OpenID: 3, NewPos: 8192},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d:\n%v", len(got), len(want), got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	st := src.Stats()
	if st.Lines != 5 || st.Records != 3 || st.Skipped != 2 || st.Events != 8 || st.ClampedTimes != 1 {
		t.Errorf("stats = %+v", st)
	}
	// Warmup: read of blocks 0,1 on disk 0 plus block 1 on disk 1.
	if st.WarmupBlocks != 3 {
		t.Errorf("WarmupBlocks = %d, want 3", st.WarmupBlocks)
	}
}

func TestBlockCSVAlignment(t *testing.T) {
	// Misaligned offset rounds UP to the next block; size rounds up to
	// whole blocks (the asterinas replayer convention).
	const input = "0,h,0,Write,100,5000\n"
	src := adapt.NewBlockCSV(strings.NewReader(input), adapt.BlockCSVConfig{BlockSize: 4096})
	got, err := trace.ReadSource(src)
	if err != nil {
		t.Fatal(err)
	}
	// offset 100 -> 4096; size 5000 -> 8192; range [4096, 12288).
	if len(got) != 3 {
		t.Fatalf("got %d events, want 3", len(got))
	}
	if seek := got[1]; seek.Kind != trace.KindSeek || seek.NewPos != 4096 {
		t.Errorf("seek = %+v, want NewPos 4096", seek)
	}
	if cl := got[2]; cl.Kind != trace.KindClose || cl.NewPos != 12288 {
		t.Errorf("close = %+v, want NewPos 12288", cl)
	}

	// A zero-size request is dropped entirely.
	src = adapt.NewBlockCSV(strings.NewReader("0,h,0,Read,0,0\n"), adapt.BlockCSVConfig{})
	if got, err := trace.ReadSource(src); err != nil || len(got) != 0 {
		t.Errorf("zero-size request: %d events, err %v; want none", len(got), err)
	}
	if st := src.Stats(); st.Records != 0 || st.Skipped != 1 {
		t.Errorf("zero-size stats = %+v", st)
	}
}

func TestBlockCSVWarmupSkip(t *testing.T) {
	const input = `1,h,0,Read,0,4096
2,h,0,Read,0,4096
3,h,0,Write,0,4096
4,h,0,Read,0,4096
`
	src := adapt.NewBlockCSV(strings.NewReader(input), adapt.BlockCSVConfig{SkipWarmup: true})
	got, err := trace.ReadSource(src)
	if err != nil {
		t.Fatal(err)
	}
	// Both pre-write reads are dropped (the block stays cold until the
	// write), the write and the final read survive.
	if len(got) != 4 {
		t.Fatalf("got %d events, want 4 (write pair + read pair): %v", len(got), got)
	}
	if got[0].Mode != trace.WriteOnly || got[2].Mode != trace.ReadOnly {
		t.Errorf("surviving requests = %v then %v, want write then read", got[0].Mode, got[2].Mode)
	}
	st := src.Stats()
	if st.SkippedReads != 2 {
		t.Errorf("SkippedReads = %d, want 2", st.SkippedReads)
	}
	if st.WarmupBlocks != 1 {
		t.Errorf("WarmupBlocks = %d, want 1 (same block counted once)", st.WarmupBlocks)
	}
	if st.Records != 2 {
		t.Errorf("Records = %d, want 2", st.Records)
	}
}

// TestBlockCSVTape pins the downstream contract: the re-encoded stream
// reconstructs exactly the foreign requests as transfers, with warmup
// reads fetchable (valid data) and fresh writes cold (no valid data
// beyond the old extent).
func TestBlockCSVTape(t *testing.T) {
	src := adapt.NewBlockCSV(strings.NewReader(blockSample), adapt.BlockCSVConfig{})
	tape, err := xfer.BuildTape(src)
	if err != nil {
		t.Fatal(err)
	}
	type tr struct {
		file          trace.FileID
		off, len, old int64
		write         bool
	}
	want := []tr{
		{file: 1, off: 0, len: 8192, old: 8192, write: false},
		{file: 1, off: 8192, len: 4096, old: 8192, write: true},
		{file: 2, off: 4096, len: 4096, old: 8192, write: false},
	}
	if len(tape.Transfers) != len(want) {
		t.Fatalf("%d transfers, want %d: %+v", len(tape.Transfers), len(want), tape.Transfers)
	}
	for i, w := range want {
		g := tape.Transfers[i]
		if g.File != w.file || g.Offset != w.off || g.Length != w.len || g.Write != w.write {
			t.Errorf("transfer %d = %+v, want %+v", i, g, w)
		}
		if tape.OldSizes[i] != w.old {
			t.Errorf("OldSizes[%d] = %d, want %d", i, tape.OldSizes[i], w.old)
		}
	}
}

func TestBlockCSVFiletime(t *testing.T) {
	// Real MSR timestamps are Windows filetimes (100 ns ticks); 20 ms
	// apart means 200,000 ticks.
	const input = "128166372003061629,prxy,0,Read,0,4096\n128166372003261629,prxy,0,Read,4096,4096\n"
	src := adapt.NewBlockCSV(strings.NewReader(input), adapt.BlockCSVConfig{})
	got, err := trace.ReadSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Time != 0 {
		t.Errorf("first event at t=%v, want 0", got[0].Time)
	}
	if last := got[len(got)-1].Time; last != 20 {
		t.Errorf("second request at t=%v, want 20ms", last)
	}
}

func TestBlockCSVErrors(t *testing.T) {
	cases := map[string]string{
		"truncated":       "0,h,0,Read,0\n",
		"bad-timestamp":   "zork,h,0,Read,0,4096\n",
		"negative-offset": "0,h,0,Read,-4096,4096\n",
		"bad-type":        "0,h,0,Frobnicate,0,4096\n",
		"negative-size":   "0,h,0,Read,0,-1\n",
	}
	for name, bad := range cases {
		t.Run(name, func(t *testing.T) {
			input := "1,h,0,Read,0,4096\n" + bad
			sourcetest.RunSticky(t, func(t *testing.T) trace.Source {
				return adapt.NewBlockCSV(strings.NewReader(input), adapt.BlockCSVConfig{})
			}, 2) // the good line's open+close arrive before the error
			src := adapt.NewBlockCSV(strings.NewReader(input), adapt.BlockCSVConfig{})
			_, err := trace.ReadSource(src)
			if err == nil || !strings.Contains(err.Error(), "line 2") {
				t.Fatalf("error %v does not name line 2", err)
			}
		})
	}
}

func TestParseBlockCSVRoundTrip(t *testing.T) {
	lines := []string{
		"128166372003061629,usr,6,Write,2031616,4096,527",
		"0,h,0,Read,100,5000",
		"7,box,12,Write,0,512,3",
	}
	for _, line := range lines {
		rec, err := adapt.ParseBlockCSVLine(line)
		if err != nil {
			t.Fatalf("%q: %v", line, err)
		}
		again, err := adapt.ParseBlockCSVLine(rec.String())
		if err != nil || again != rec {
			t.Fatalf("%q -> %+v -> %q -> %+v (err %v)", line, rec, rec.String(), again, err)
		}
	}
}
