package adapt_test

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/trace/adapt"
	"bsdtrace/internal/trace/adapt/adapttest"
)

// The committed fixture corpus: hand-checked samples of each foreign
// format plus malformed variants. The fixture files themselves are
// hand-written and never regenerated; the .golden.json files beside
// them snapshot exactly what the adapter produced (class, events,
// stats, terminal error) and are rewritten with BSDTRACE_REGEN_FIXTURES=1.
var fixtureCorpus = []struct {
	file   string
	format adapt.Format
	// wantErr marks malformed fixtures whose parse must end in a
	// positioned terminal error rather than clean EOF.
	wantErr bool
}{
	{file: "msr-sample.csv", format: adapt.FormatBlockCSV},
	{file: "zipf-sample.txt", format: adapt.FormatPageRef},
	{file: "strace-sample.txt", format: adapt.FormatStrace},
	{file: "msr-truncated.csv", format: adapt.FormatBlockCSV, wantErr: true},
	{file: "msr-bad-timestamp.csv", format: adapt.FormatBlockCSV, wantErr: true},
	{file: "msr-negative-offset.csv", format: adapt.FormatBlockCSV, wantErr: true},
	{file: "zipf-negative-page.txt", format: adapt.FormatPageRef, wantErr: true},
	{file: "strace-truncated.txt", format: adapt.FormatStrace, wantErr: true},
	// Unknown syscalls are skipped noise, not damage: this one parses
	// to the end with a nonzero skip count.
	{file: "strace-unknown-syscall.txt", format: adapt.FormatStrace},
}

// fixtureResult is the golden snapshot schema.
type fixtureResult struct {
	Format string        `json:"format"`
	Class  string        `json:"class"`
	Events []trace.Event `json:"events"`
	Stats  adapt.Stats   `json:"stats"`
	Error  string        `json:"error,omitempty"`
}

func parseFixture(t *testing.T, file string, format adapt.Format) fixtureResult {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", file))
	if err != nil {
		t.Fatalf("%v (fixture files are hand-written and committed)", err)
	}
	src, err := adapt.NewSource(format, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	res := fixtureResult{Format: format.String(), Class: src.Class().String()}
	for {
		e, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			res.Error = err.Error()
			break
		}
		res.Events = append(res.Events, e)
	}
	res.Stats = src.Stats()
	return res
}

func goldenPath(file string) string {
	base := strings.TrimSuffix(file, filepath.Ext(file))
	return filepath.Join("testdata", base+".golden.json")
}

// TestRegenAdapterFixtures rewrites the .golden.json snapshots; it only
// runs when BSDTRACE_REGEN_FIXTURES=1, so the goldens stay stable.
func TestRegenAdapterFixtures(t *testing.T) {
	if os.Getenv("BSDTRACE_REGEN_FIXTURES") != "1" {
		t.Skip("set BSDTRACE_REGEN_FIXTURES=1 to rewrite golden snapshots")
	}
	for _, fx := range fixtureCorpus {
		res := parseFixture(t, fx.file, fx.format)
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(goldenPath(fx.file), blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAdapterFixtureCorpus pins every committed fixture to its golden
// snapshot: the exact events, statistics, and (for malformed variants)
// the exact positioned error message.
func TestAdapterFixtureCorpus(t *testing.T) {
	for _, fx := range fixtureCorpus {
		t.Run(fx.file, func(t *testing.T) {
			res := parseFixture(t, fx.file, fx.format)

			if fx.wantErr {
				if res.Error == "" {
					t.Fatalf("malformed fixture parsed clean: %+v", res.Stats)
				}
				if !strings.Contains(res.Error, "line ") {
					t.Errorf("terminal error %q carries no line position", res.Error)
				}
			} else if res.Error != "" {
				t.Fatalf("clean fixture ended in error: %v", res.Error)
			}
			if fx.file == "strace-unknown-syscall.txt" && res.Stats.Skipped == 0 {
				t.Errorf("unknown-syscall fixture skipped nothing: %+v", res.Stats)
			}

			blob, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			blob = append(blob, '\n')
			want, err := os.ReadFile(goldenPath(fx.file))
			if err != nil {
				t.Fatalf("%v (regenerate with BSDTRACE_REGEN_FIXTURES=1)", err)
			}
			if !bytes.Equal(blob, want) {
				t.Errorf("parse result drifted from golden snapshot %s (regenerate with BSDTRACE_REGEN_FIXTURES=1 and review the diff)", goldenPath(fx.file))
			}
		})
	}
}

// TestFixtureSamplesConform runs the full conformance suite over the
// three clean committed samples, so the corpus and the laws can never
// drift apart.
func TestFixtureSamplesConform(t *testing.T) {
	samples := map[string]adapt.Format{
		"msr-sample.csv":    adapt.FormatBlockCSV,
		"zipf-sample.txt":   adapt.FormatPageRef,
		"strace-sample.txt": adapt.FormatStrace,
	}
	for file, format := range samples {
		t.Run(file, func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join("testdata", file))
			if err != nil {
				t.Fatal(err)
			}
			adapttest.Run(t, func(t *testing.T) adapt.Source {
				src, err := adapt.NewSource(format, bytes.NewReader(data))
				if err != nil {
					t.Fatal(err)
				}
				return src
			})
		})
	}
}
