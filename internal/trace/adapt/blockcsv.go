package adapt

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"bsdtrace/internal/trace"
)

// The MSR-Cambridge block trace format: one device request per CSV line,
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size[,ResponseTime]
//
// where Timestamp is a Windows filetime (100-nanosecond ticks), Type is
// "Read" or "Write", and Offset/Size are bytes. The adapter follows the
// asterinas replayer's conventions: a request whose offset is not
// block-aligned is rounded up to the next block boundary, sizes are
// rounded up to whole blocks, and blocks first referenced by a read are
// "warmup" blocks — data that predates the trace — which the replayer
// pre-writes before the run and which this adapter can optionally skip.
//
// Each request becomes one native open → seek → close triple on a
// per-(hostname, disk) file, so the xfer scanner reconstructs exactly
// the request's byte range as one sequential run, and the cache
// simulator sees the same block reference string a raw replayer would
// issue. Reads open with the device's known extent (grown to cover the
// request), so every read block holds valid data and costs a fetch;
// writes open with the previous extent, so blocks beyond it are cold
// whole-block overwrites and cost no read-before-write — the warmup
// semantics of the replayer, expressed through the native size rules.

// BlockRecord is one parsed block-trace request.
type BlockRecord struct {
	// Timestamp is the raw foreign timestamp: a Windows filetime when
	// the trace is a real MSR capture, or milliseconds for hand-written
	// fixtures (values below 1e14 are taken as milliseconds).
	Timestamp int64
	Host      string
	Disk      int64
	Write     bool
	// Offset and Size are the request's byte range, as captured (the
	// adapter aligns them; the record keeps the raw values).
	Offset, Size int64
	// Response is the captured response time, or -1 when the line had
	// no seventh column. It is carried for round-tripping only.
	Response int64
}

// String renders the record back into the CSV line format. Parsing the
// result yields the record again (the fuzz round-trip law).
func (r BlockRecord) String() string {
	typ := "Read"
	if r.Write {
		typ = "Write"
	}
	if r.Response < 0 {
		return fmt.Sprintf("%d,%s,%d,%s,%d,%d", r.Timestamp, r.Host, r.Disk, typ, r.Offset, r.Size)
	}
	return fmt.Sprintf("%d,%s,%d,%s,%d,%d,%d", r.Timestamp, r.Host, r.Disk, typ, r.Offset, r.Size, r.Response)
}

// ParseBlockCSVLine parses one CSV line of the block format. The
// seventh (response time) column is optional.
func ParseBlockCSVLine(line string) (BlockRecord, error) {
	fields := strings.Split(line, ",")
	if len(fields) != 6 && len(fields) != 7 {
		return BlockRecord{}, fmt.Errorf("adapt: truncated block record (%d fields, want 6 or 7) in %q", len(fields), line)
	}
	for i := range fields {
		fields[i] = strings.TrimSpace(fields[i])
	}
	rec := BlockRecord{Response: -1}
	ts, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil || ts < 0 {
		return BlockRecord{}, fmt.Errorf("adapt: bad timestamp %q in %q", fields[0], line)
	}
	rec.Timestamp = ts
	rec.Host = fields[1]
	if rec.Host == "" || strings.ContainsAny(rec.Host, ", \t") {
		return BlockRecord{}, fmt.Errorf("adapt: bad hostname %q in %q", fields[1], line)
	}
	if rec.Disk, err = strconv.ParseInt(fields[2], 10, 64); err != nil || rec.Disk < 0 {
		return BlockRecord{}, fmt.Errorf("adapt: bad disk number %q in %q", fields[2], line)
	}
	switch strings.ToLower(fields[3]) {
	case "read", "r":
		rec.Write = false
	case "write", "w":
		rec.Write = true
	default:
		return BlockRecord{}, fmt.Errorf("adapt: bad request type %q in %q", fields[3], line)
	}
	if rec.Offset, err = strconv.ParseInt(fields[4], 10, 64); err != nil || rec.Offset < 0 || rec.Offset > maxIOOffset {
		return BlockRecord{}, fmt.Errorf("adapt: bad offset %q in %q", fields[4], line)
	}
	if rec.Size, err = strconv.ParseInt(fields[5], 10, 64); err != nil || rec.Size < 0 || rec.Size > maxIORequest {
		return BlockRecord{}, fmt.Errorf("adapt: bad size %q in %q", fields[5], line)
	}
	if len(fields) == 7 {
		if rec.Response, err = strconv.ParseInt(fields[6], 10, 64); err != nil || rec.Response < 0 {
			return BlockRecord{}, fmt.Errorf("adapt: bad response time %q in %q", fields[6], line)
		}
	}
	return rec, nil
}

// filetimeThreshold separates Windows filetimes from hand-written
// millisecond timestamps: 1e14 filetime ticks is year 1917, and 1e14 ms
// is year 5138, so no real capture falls between the interpretations.
const filetimeThreshold = 1e14

// BlockCSVConfig configures the block adapter. The zero value is the
// MSR default: 4-kbyte blocks, warmup reads kept.
type BlockCSVConfig struct {
	// BlockSize is the alignment unit. Default 4096.
	BlockSize int64
	// SkipWarmup drops read requests whose blocks were never written
	// earlier in the trace, as a replayer without a warmup phase must
	// (the data does not exist on its disk). The default keeps them:
	// the adapter opens reads with a grown extent, so warmup data reads
	// as valid — the equivalent of the replayer's pre-write phase.
	SkipWarmup bool
}

func (c *BlockCSVConfig) fill() {
	c.BlockSize = clampUnit(c.BlockSize, 4096)
}

// BlockCSV adapts a block-trace CSV stream to a trace.Source of class
// ClassBlock.
type BlockCSV struct {
	cfg BlockCSVConfig
	ls  *lineScanner
	em  emitter
	tl  timeline

	files   map[string]trace.FileID // (host, disk) -> file
	extent  map[trace.FileID]int64  // bytes known to exist per file
	touched map[blockKey]bool       // blocks referenced at all (warmup dedup)
	written map[blockKey]bool       // blocks holding valid data
	nextID  uint64                  // next open id (and file id seed)
}

type blockKey struct {
	file  trace.FileID
	block int64
}

// NewBlockCSV returns a block-trace adapter reading CSV lines from r.
func NewBlockCSV(r io.Reader, cfg BlockCSVConfig) *BlockCSV {
	cfg.fill()
	return &BlockCSV{
		cfg:     cfg,
		ls:      newLineScanner(r),
		files:   make(map[string]trace.FileID),
		extent:  make(map[trace.FileID]int64),
		touched: make(map[blockKey]bool),
		written: make(map[blockKey]bool),
	}
}

// Class reports ClassBlock: the stream carries no logical structure.
func (b *BlockCSV) Class() trace.Class { return trace.ClassBlock }

// Stats returns the ingest accounting so far.
func (b *BlockCSV) Stats() Stats { return b.em.stats }

// Next returns the next native event.
func (b *BlockCSV) Next() (trace.Event, error) {
	for {
		if e, ok := b.em.pop(); ok {
			return e, nil
		}
		if b.em.err != nil {
			return trace.Event{}, b.em.err
		}
		line, n, err := b.ls.next()
		if err != nil {
			return trace.Event{}, b.em.fail(err)
		}
		b.em.stats.Lines++
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			b.em.stats.Skipped++
			continue
		}
		if n == 1 && looksLikeHeader(trimmed) {
			b.em.stats.Skipped++
			continue
		}
		rec, perr := ParseBlockCSVLine(trimmed)
		if perr != nil {
			b.em.stats.Lines--
			return trace.Event{}, b.em.fail(fmt.Errorf("line %d: %w", n, perr))
		}
		b.ingest(rec)
	}
}

// looksLikeHeader reports a first line whose timestamp column is not
// numeric — the optional column-name header some CSV exports carry.
func looksLikeHeader(line string) bool {
	first, _, _ := strings.Cut(line, ",")
	_, err := strconv.ParseInt(strings.TrimSpace(first), 10, 64)
	return err != nil
}

// ingest re-encodes one accepted record into native events.
func (b *BlockCSV) ingest(rec BlockRecord) {
	b.em.stats.Records++
	bs := b.cfg.BlockSize

	// Block alignment, as the asterinas replayer does: a misaligned
	// offset rounds up to the next block boundary; the size rounds up
	// to whole blocks. A request that rounds to nothing is skipped.
	off, size := rec.Offset, rec.Size
	if off%bs != 0 {
		off = (off/bs + 1) * bs
	}
	if size%bs != 0 {
		size = (size/bs + 1) * bs
	}
	if size == 0 {
		b.em.stats.Skipped++
		b.em.stats.Records--
		return
	}
	end := off + size

	file := b.fileFor(rec.Host, rec.Disk)

	// Warmup tracking: blocks first referenced by a read predate the
	// trace. Writes populate their blocks either way; a read populates
	// its blocks only when warmup reads are kept (the replayer's
	// pre-write phase made that data real). Under SkipWarmup a block
	// never written stays cold, so re-reads of it are dropped too.
	warm := false
	for blk := off / bs; blk < end/bs; blk++ {
		k := blockKey{file, blk}
		if !rec.Write && !b.written[k] {
			warm = true
			if !b.touched[k] {
				b.em.stats.WarmupBlocks++
			}
		}
		b.touched[k] = true
		if rec.Write || !b.cfg.SkipWarmup {
			b.written[k] = true
		}
	}
	if warm && b.cfg.SkipWarmup {
		b.em.stats.SkippedReads++
		b.em.stats.Records--
		return
	}

	// Foreign timestamps: Windows filetime ticks or literal ms.
	raw := rec.Timestamp
	var t trace.Time
	if raw >= filetimeThreshold {
		t = trace.Time(raw / 10_000)
	} else {
		t = trace.Time(raw)
	}
	t, clamped := b.tl.clamp(t)
	if clamped {
		b.em.stats.ClampedTimes++
	}

	// The native encoding: one open/seek/close per request. Reads open
	// at the grown extent so the range holds valid data; writes open at
	// the previous extent so fresh blocks are cold overwrites.
	mode := trace.ReadOnly
	openSize := b.extent[file]
	if rec.Write {
		mode = trace.WriteOnly
		if end > b.extent[file] {
			b.extent[file] = end
		}
	} else {
		if end > openSize {
			openSize = end
		}
		if openSize > b.extent[file] {
			b.extent[file] = openSize
		}
	}

	b.nextID++
	id := trace.OpenID(b.nextID)
	user := trace.UserID(uint32(file)) // one "user" per device: hosts stay distinguishable
	b.em.push(trace.Event{Time: t, Kind: trace.KindOpen, OpenID: id, File: file, User: user, Mode: mode, Size: openSize})
	if off != 0 {
		b.em.push(trace.Event{Time: t, Kind: trace.KindSeek, OpenID: id, OldPos: 0, NewPos: off})
	}
	b.em.push(trace.Event{Time: t, Kind: trace.KindClose, OpenID: id, NewPos: end})
}

// fileFor maps a (hostname, disk) pair to a stable FileID in
// first-appearance order.
func (b *BlockCSV) fileFor(host string, disk int64) trace.FileID {
	key := fmt.Sprintf("%s/%d", host, disk)
	if id, ok := b.files[key]; ok {
		return id
	}
	id := trace.FileID(len(b.files) + 1)
	b.files[key] = id
	return id
}
