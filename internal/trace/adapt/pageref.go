package adapt

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"bsdtrace/internal/trace"
)

// The page-reference format used by the classic buffer-manager
// benchmarks: one reference per line,
//
//	x, ###
//
// where x is 0 for a read and 1 for a write, and ### is a page number
// (the published Zipf traces use pages 1..50,000). The format carries
// no timestamps and no file structure: it is a bare reference string,
// the least structured trace class.
//
// Each reference becomes one open → seek → close triple on a single
// file at offset page*PageSize, so the cache simulator sees exactly the
// page reference string (page k maps to block k at the matching block
// size). Time is synthesized as one fixed tick per reference, which
// preserves reference order — the only temporal information the format
// has — and keeps rate denominators finite.

// PageRecord is one parsed page reference.
type PageRecord struct {
	Write bool
	Page  int64
}

// String renders the record back into the "x, ###" line format.
func (r PageRecord) String() string {
	x := 0
	if r.Write {
		x = 1
	}
	return fmt.Sprintf("%d, %d", x, r.Page)
}

// ParsePageRefLine parses one "x, ###" line.
func ParsePageRefLine(line string) (PageRecord, error) {
	op, pageStr, ok := strings.Cut(line, ",")
	if !ok {
		return PageRecord{}, fmt.Errorf("adapt: truncated page reference (no comma) in %q", line)
	}
	var rec PageRecord
	switch strings.TrimSpace(op) {
	case "0":
		rec.Write = false
	case "1":
		rec.Write = true
	default:
		return PageRecord{}, fmt.Errorf("adapt: bad op %q (want 0 or 1) in %q", strings.TrimSpace(op), line)
	}
	page, err := strconv.ParseInt(strings.TrimSpace(pageStr), 10, 64)
	if err != nil || page < 0 || page > maxIOOffset>>maxBlockShift {
		return PageRecord{}, fmt.Errorf("adapt: bad page number %q in %q", strings.TrimSpace(pageStr), line)
	}
	rec.Page = page
	return rec, nil
}

// PageRefConfig configures the page-reference adapter. The zero value
// uses 4-kbyte pages one millisecond apart.
type PageRefConfig struct {
	// PageSize is the bytes per page. Default 4096.
	PageSize int64
	// Tick is the synthesized time between references. Default 1 ms.
	Tick trace.Time
}

func (c *PageRefConfig) fill() {
	c.PageSize = clampUnit(c.PageSize, 4096)
	if c.Tick <= 0 {
		c.Tick = 1
	}
}

// PageRef adapts a page-reference stream to a trace.Source of class
// ClassPage.
type PageRef struct {
	cfg PageRefConfig
	ls  *lineScanner
	em  emitter

	extent int64 // bytes known to exist in the single backing file
	nextID uint64
}

// pageFile is the single FileID all page references land on.
const pageFile = trace.FileID(1)

// NewPageRef returns a page-reference adapter reading lines from r.
func NewPageRef(r io.Reader, cfg PageRefConfig) *PageRef {
	cfg.fill()
	return &PageRef{cfg: cfg, ls: newLineScanner(r)}
}

// Class reports ClassPage: a bare reference string.
func (p *PageRef) Class() trace.Class { return trace.ClassPage }

// Stats returns the ingest accounting so far.
func (p *PageRef) Stats() Stats { return p.em.stats }

// Next returns the next native event.
func (p *PageRef) Next() (trace.Event, error) {
	for {
		if e, ok := p.em.pop(); ok {
			return e, nil
		}
		if p.em.err != nil {
			return trace.Event{}, p.em.err
		}
		line, n, err := p.ls.next()
		if err != nil {
			return trace.Event{}, p.em.fail(err)
		}
		p.em.stats.Lines++
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			p.em.stats.Skipped++
			continue
		}
		rec, perr := ParsePageRefLine(trimmed)
		if perr != nil {
			p.em.stats.Lines--
			return trace.Event{}, p.em.fail(fmt.Errorf("line %d: %w", n, perr))
		}
		p.ingest(rec)
	}
}

// ingest re-encodes one page reference into native events.
func (p *PageRef) ingest(rec PageRecord) {
	p.em.stats.Records++
	off := rec.Page * p.cfg.PageSize
	end := off + p.cfg.PageSize
	t := trace.Time(int64(p.em.stats.Records-1)) * p.cfg.Tick

	// Same extent rules as the block adapter: reads open with the file
	// grown to cover the page (the data is valid, the fetch is real);
	// writes open with the previous extent, so a first-touch write is a
	// cold whole-page overwrite.
	mode := trace.ReadOnly
	openSize := p.extent
	if rec.Write {
		mode = trace.WriteOnly
		if end > p.extent {
			p.extent = end
		}
	} else {
		if end > openSize {
			openSize = end
		}
		if openSize > p.extent {
			p.extent = openSize
		}
	}

	p.nextID++
	id := trace.OpenID(p.nextID)
	p.em.push(trace.Event{Time: t, Kind: trace.KindOpen, OpenID: id, File: pageFile, User: 1, Mode: mode, Size: openSize})
	if off != 0 {
		p.em.push(trace.Event{Time: t, Kind: trace.KindSeek, OpenID: id, OldPos: 0, NewPos: off})
	}
	p.em.push(trace.Event{Time: t, Kind: trace.KindClose, OpenID: id, NewPos: end})
}
