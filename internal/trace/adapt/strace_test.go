package adapt_test

import (
	"strings"
	"testing"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/trace/adapt"
	"bsdtrace/internal/trace/adapt/adapttest"
	"bsdtrace/internal/trace/sourcetest"
)

// straceSample is a cat-like run with the noise a real log carries:
// failed calls, operations on inherited fds, a signal, a process exit.
const straceSample = `1234  1700000000.000000 execve("/bin/cat", ["cat", "notes"], 0x7ffc /* 20 vars */) = 0
1234  1700000000.010000 openat(AT_FDCWD, "notes", O_RDONLY) = 3
1234  1700000000.020000 read(3, "hello wor"..., 4096) = 4096
1234  1700000000.030000 read(3, "ld\n", 4096) = 100
1234  1700000000.040000 read(3, "", 4096) = 0
1234  1700000000.050000 close(3) = 0
1234  1700000000.060000 openat(AT_FDCWD, "out", O_WRONLY|O_CREAT|O_TRUNC, 0644) = 3
1234  1700000000.070000 write(3, "hello"..., 4196) = 4196
1234  1700000000.080000 close(3) = 0
1234  1700000000.090000 lseek(0, 0, SEEK_SET) = -1 ESPIPE (Illegal seek)
1234  1700000000.100000 write(1, "done\n", 5) = 5
--- SIGCHLD {si_signo=SIGCHLD, si_code=CLD_EXITED} ---
1234  1700000000.110000 unlink("out") = 0
+++ exited with 0 +++
`

func straceFactory(input string) adapttest.Factory {
	return func(t *testing.T) adapt.Source {
		return adapt.NewStrace(strings.NewReader(input), adapt.StraceConfig{})
	}
}

func TestStraceConformance(t *testing.T) {
	adapttest.Run(t, straceFactory(straceSample))
}

func TestStraceEvents(t *testing.T) {
	src := adapt.NewStrace(strings.NewReader(straceSample), adapt.StraceConfig{})
	got, err := trace.ReadSource(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []trace.Event{
		{Time: 0, Kind: trace.KindExec, File: 1, User: 1},
		{Time: 10, Kind: trace.KindOpen, OpenID: 3, File: 2, User: 1, Mode: trace.ReadOnly},
		// The three reads advance the implicit position to 4196 with no
		// events of their own — the paper's no-read-write model.
		{Time: 50, Kind: trace.KindClose, OpenID: 3, NewPos: 4196},
		// O_TRUNC makes the second open a create.
		{Time: 60, Kind: trace.KindCreate, OpenID: 5, File: 4, User: 1, Mode: trace.WriteOnly},
		{Time: 80, Kind: trace.KindClose, OpenID: 5, NewPos: 4196},
		{Time: 110, Kind: trace.KindUnlink, File: 4},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d:\n%v", len(got), len(want), got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	st := src.Stats()
	// Skipped: the failed lseek, the write to inherited fd 1, the
	// signal, and the exit marker.
	if st.Lines != 14 || st.Records != 10 || st.Skipped != 4 {
		t.Errorf("stats = %+v", st)
	}
}

// TestStraceSeekTruncate covers the positional syscalls on a pid-less,
// wall-clock-timestamped log.
func TestStraceSeekTruncate(t *testing.T) {
	const input = `09:00:00.000 openat(AT_FDCWD, "db", O_RDWR) = 4
09:00:00.100 pread64(4, "x", 100, 4096) = 100
09:00:00.200 lseek(4, 0, SEEK_SET) = 0
09:00:00.300 write(4, "y", 50) = 50
09:00:00.400 ftruncate(4, 1000) = 0
09:00:00.500 close(4) = 0
09:00:01.000 truncate("db", 0) = 0
09:00:01.100 unlink("db") = 0
`
	adapttest.Run(t, straceFactory(input))

	src := adapt.NewStrace(strings.NewReader(input), adapt.StraceConfig{})
	got, err := trace.ReadSource(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []trace.Event{
		{Time: 0, Kind: trace.KindOpen, OpenID: 2, File: 1, User: 1, Mode: trace.ReadWrite},
		// pread64 at an offset away from the implicit position
		// synthesizes a seek.
		{Time: 100, Kind: trace.KindSeek, OpenID: 2, OldPos: 0, NewPos: 4096},
		// lseek's return value is the new absolute position.
		{Time: 200, Kind: trace.KindSeek, OpenID: 2, OldPos: 4196, NewPos: 0},
		{Time: 400, Kind: trace.KindTruncate, File: 1, Size: 1000},
		{Time: 500, Kind: trace.KindClose, OpenID: 2, NewPos: 50},
		{Time: 1000, Kind: trace.KindTruncate, File: 1},
		{Time: 1100, Kind: trace.KindUnlink, File: 1},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d:\n%v", len(got), len(want), got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestStraceFdReuse: a log that lost a close reuses the fd number; the
// adapter ends the stale session itself so open ids stay well-formed.
func TestStraceFdReuse(t *testing.T) {
	const input = `open("a", O_RDONLY) = 3
read(3, "", 100) = 100
open("b", O_RDONLY) = 3
close(3) = 0
`
	adapttest.Run(t, straceFactory(input))

	src := adapt.NewStrace(strings.NewReader(input), adapt.StraceConfig{})
	got, err := trace.ReadSource(src)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []trace.Kind{trace.KindOpen, trace.KindClose, trace.KindOpen, trace.KindClose}
	if len(got) != len(kinds) {
		t.Fatalf("got %d events, want %d: %v", len(got), len(kinds), got)
	}
	for i, k := range kinds {
		if got[i].Kind != k {
			t.Errorf("event %d kind %v, want %v", i, got[i].Kind, k)
		}
	}
	if got[1].NewPos != 100 {
		t.Errorf("synthesized close at pos %d, want 100 (what the reads revealed)", got[1].NewPos)
	}
}

// TestStraceIncarnations: unlinking a path retires its FileID; the next
// create of the same path is a new file.
func TestStraceIncarnations(t *testing.T) {
	const input = `creat("tmp", 0644) = 3
close(3) = 0
unlink("tmp") = 0
creat("tmp", 0644) = 3
close(3) = 0
`
	src := adapt.NewStrace(strings.NewReader(input), adapt.StraceConfig{})
	got, err := trace.ReadSource(src)
	if err != nil {
		t.Fatal(err)
	}
	first, second := got[0], got[3]
	if first.Kind != trace.KindCreate || second.Kind != trace.KindCreate {
		t.Fatalf("events: %v", got)
	}
	if first.File == second.File {
		t.Errorf("both incarnations got FileID %d; want distinct ids", first.File)
	}
}

func TestStraceErrors(t *testing.T) {
	cases := map[string]string{
		"truncated-args": `openat(AT_FDCWD, "x", O_RDONLY`,
		"bad-timestamp":  `12:99:00.000 close(3) = 0`,
		"missing-ret":    `close(3)`,
		"bad-fd":         `close(three) = 0`,
		"negative-len":   `ftruncate(3, -1) = 0`,
		"strange-dirfd":  `openat(7, "x", O_RDONLY) = 3`,
	}
	for name, bad := range cases {
		t.Run(name, func(t *testing.T) {
			input := "open(\"a\", O_RDONLY) = 3\n" + bad + "\n"
			sourcetest.RunSticky(t, func(t *testing.T) trace.Source {
				return adapt.NewStrace(strings.NewReader(input), adapt.StraceConfig{})
			}, 1) // the open event arrives before the error
			src := adapt.NewStrace(strings.NewReader(input), adapt.StraceConfig{})
			_, err := trace.ReadSource(src)
			if err == nil || !strings.Contains(err.Error(), "line 2") {
				t.Fatalf("error %v does not name line 2", err)
			}
		})
	}
}

func TestParseStraceLineSkips(t *testing.T) {
	skips := []string{
		"",
		"--- SIGSEGV {si_signo=SIGSEGV} ---",
		"+++ killed by SIGKILL +++",
		`mmap(NULL, 8192, PROT_READ, MAP_PRIVATE, 3, 0) = 0`,
		`futex(0x7f, FUTEX_WAIT, 0, NULL) = 0`,
		`1234  read(3,  <unfinished ...>`,
		`1234  <... read resumed>"", 4096) = 0`,
		`openat(AT_FDCWD, "x", O_RDONLY) = ?`,
	}
	for _, line := range skips {
		if _, ok, err := adapt.ParseStraceLine(line); ok || err != nil {
			t.Errorf("ParseStraceLine(%q) = ok=%v err=%v, want skip", line, ok, err)
		}
	}
}

func TestParseStraceLineRoundTrip(t *testing.T) {
	lines := []string{
		`1234  1700000000.123456 openat(AT_FDCWD, "/etc/passwd", O_RDONLY|O_CLOEXEC) = 3`,
		`read(3, "line\n", 4096) = 5`,
		`14:32:05.123456 write(4, "x"..., 100) = 100`,
		`pread64(3, "\"quoted\"", 10, 200) = 10`,
		`lseek(3, -10, SEEK_END) = 990`,
		`close(9) = 0`,
		`unlink("/tmp/a b") = 0`,
		`unlinkat(AT_FDCWD, "dir", AT_REMOVEDIR) = 0`,
		`truncate("f", 0) = 0`,
		`ftruncate(5, 12345) = 0`,
		`execve("/bin/sh", ["sh", "-c", "ls, etc"], 0x55 /* 10 vars */) = 0`,
		`open("gone", O_RDONLY) = -1 ENOENT (No such file or directory)`,
		`creat("n", 0600) = 4`,
	}
	for _, line := range lines {
		s, ok, err := adapt.ParseStraceLine(line)
		if err != nil || !ok {
			t.Fatalf("ParseStraceLine(%q) = ok=%v err=%v", line, ok, err)
		}
		again, ok, err := adapt.ParseStraceLine(s.String())
		if err != nil || !ok {
			t.Fatalf("re-parse of %q (from %q) failed: ok=%v err=%v", s.String(), line, ok, err)
		}
		if again != s {
			t.Errorf("round trip changed the record:\n  line   %q\n  first  %+v\n  render %q\n  second %+v", line, s, s.String(), again)
		}
	}
}
