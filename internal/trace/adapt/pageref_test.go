package adapt_test

import (
	"strings"
	"testing"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/trace/adapt"
	"bsdtrace/internal/trace/adapt/adapttest"
	"bsdtrace/internal/trace/sourcetest"
)

const pageSample = `# zipf benchmark excerpt
0, 0
1, 2
0, 1
0, 2
`

func pageFactory(input string, cfg adapt.PageRefConfig) adapttest.Factory {
	return func(t *testing.T) adapt.Source {
		return adapt.NewPageRef(strings.NewReader(input), cfg)
	}
}

func TestPageRefConformance(t *testing.T) {
	adapttest.Run(t, pageFactory(pageSample, adapt.PageRefConfig{}))
}

func TestPageRefEvents(t *testing.T) {
	src := adapt.NewPageRef(strings.NewReader(pageSample), adapt.PageRefConfig{})
	got, err := trace.ReadSource(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []trace.Event{
		// "0, 0": read of page 0, time synthesized one tick per record.
		{Time: 0, Kind: trace.KindOpen, OpenID: 1, File: 1, User: 1, Mode: trace.ReadOnly, Size: 4096},
		{Time: 0, Kind: trace.KindClose, OpenID: 1, NewPos: 4096},
		// "1, 2": write of page 2, opens at the previous extent.
		{Time: 1, Kind: trace.KindOpen, OpenID: 2, File: 1, User: 1, Mode: trace.WriteOnly, Size: 4096},
		{Time: 1, Kind: trace.KindSeek, OpenID: 2, OldPos: 0, NewPos: 8192},
		{Time: 1, Kind: trace.KindClose, OpenID: 2, NewPos: 12288},
		// "0, 1": read of page 1, inside the grown extent.
		{Time: 2, Kind: trace.KindOpen, OpenID: 3, File: 1, User: 1, Mode: trace.ReadOnly, Size: 12288},
		{Time: 2, Kind: trace.KindSeek, OpenID: 3, OldPos: 0, NewPos: 4096},
		{Time: 2, Kind: trace.KindClose, OpenID: 3, NewPos: 8192},
		// "0, 2": re-read of the written page.
		{Time: 3, Kind: trace.KindOpen, OpenID: 4, File: 1, User: 1, Mode: trace.ReadOnly, Size: 12288},
		{Time: 3, Kind: trace.KindSeek, OpenID: 4, OldPos: 0, NewPos: 8192},
		{Time: 3, Kind: trace.KindClose, OpenID: 4, NewPos: 12288},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if st := src.Stats(); st.Lines != 5 || st.Records != 4 || st.Skipped != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPageRefConfig(t *testing.T) {
	src := adapt.NewPageRef(strings.NewReader("0, 3\n"), adapt.PageRefConfig{PageSize: 512, Tick: 10})
	got, err := trace.ReadSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if seek := got[1]; seek.NewPos != 3*512 {
		t.Errorf("seek to %d, want %d", seek.NewPos, 3*512)
	}
	src = adapt.NewPageRef(strings.NewReader("0, 0\n0, 0\n"), adapt.PageRefConfig{Tick: 10})
	got, err = trace.ReadSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if last := got[len(got)-1].Time; last != 10 {
		t.Errorf("second reference at t=%v, want 10ms tick", last)
	}
}

func TestPageRefErrors(t *testing.T) {
	cases := map[string]string{
		"truncated":     "0 17\n",
		"bad-op":        "2, 17\n",
		"negative-page": "0, -1\n",
		"bad-page":      "0, seventeen\n",
	}
	for name, bad := range cases {
		t.Run(name, func(t *testing.T) {
			input := "0, 1\n" + bad
			sourcetest.RunSticky(t, func(t *testing.T) trace.Source {
				return adapt.NewPageRef(strings.NewReader(input), adapt.PageRefConfig{})
			}, 3) // open+seek+close of the good reference
			src := adapt.NewPageRef(strings.NewReader(input), adapt.PageRefConfig{})
			_, err := trace.ReadSource(src)
			if err == nil || !strings.Contains(err.Error(), "line 2") {
				t.Fatalf("error %v does not name line 2", err)
			}
		})
	}
}

func TestParsePageRefRoundTrip(t *testing.T) {
	for _, line := range []string{"0, 17", "1, 50000", "0,3", "1,  0"} {
		rec, err := adapt.ParsePageRefLine(line)
		if err != nil {
			t.Fatalf("%q: %v", line, err)
		}
		again, err := adapt.ParsePageRefLine(rec.String())
		if err != nil || again != rec {
			t.Fatalf("%q -> %+v -> %q -> %+v (err %v)", line, rec, rec.String(), again, err)
		}
	}
}
