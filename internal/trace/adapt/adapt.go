// Package adapt imports foreign trace formats into the native pipeline.
//
// The whole repository consumes trace.Source, so running the 1985
// analysis on a modern real-world trace only needs an importer that
// re-encodes foreign records into the native event vocabulary. Three
// importers are provided:
//
//   - BlockCSV reads MSR-Cambridge-style block traces: one CSV line per
//     device request (timestamp, hostname, disk, R/W, offset, size).
//   - PageRef reads the classic buffer-manager benchmark format: one
//     "x, ###" page reference per line, 0=read 1=write.
//   - Strace reads strace-shaped syscall logs: open/read/write/lseek/
//     close lines with fds and return values.
//
// Each adapter emits well-formed native events. Block and page records
// become one open → seek → close triple per request, chosen so the xfer
// scanner reconstructs exactly the foreign transfer and nothing else;
// strace logs carry real logical structure, so they translate nearly
// one-to-one (reads and writes advance an implicit sequential position,
// exactly the paper's no-read-write model, and surface through close and
// seek positions). Every adapter declares its trace.Class, which the
// analyzer's metric sets check before rendering logical-only tables.
//
// Adapter laws, pinned by the adapttest conformance suite:
//
//   - events are emitted in non-decreasing time order; a foreign
//     timestamp that runs backwards is clamped up to the previous time
//     (counted in Stats.ClampedTimes), never reordered;
//   - the emitted event kinds are consistent with the declared class
//     (block and page traces produce only open/seek/close);
//   - parsing is deterministic: two passes over the same bytes yield
//     identical event streams;
//   - terminal errors are sticky and carry the 1-based line number.
package adapt

import (
	"bufio"
	"fmt"
	"io"

	"bsdtrace/internal/trace"
)

// Format names an input trace format the commands accept via -format.
type Format int

// The supported formats. FormatBSD is the native format (binary or
// text); the rest are foreign and have adapters in this package.
const (
	FormatBSD Format = iota
	FormatBlockCSV
	FormatPageRef
	FormatStrace
)

// String returns the canonical -format flag value.
func (f Format) String() string {
	switch f {
	case FormatBSD:
		return "bsd"
	case FormatBlockCSV:
		return "blockcsv"
	case FormatPageRef:
		return "pageref"
	case FormatStrace:
		return "strace"
	}
	return fmt.Sprintf("format(%d)", int(f))
}

// Class returns the trace class a format's records carry.
func (f Format) Class() trace.Class {
	switch f {
	case FormatBlockCSV:
		return trace.ClassBlock
	case FormatPageRef:
		return trace.ClassPage
	default:
		return trace.ClassLogical
	}
}

// ParseFormat resolves a -format flag value (with aliases) to a Format.
func ParseFormat(name string) (Format, error) {
	switch name {
	case "", "bsd", "binary", "native":
		return FormatBSD, nil
	case "blockcsv", "msr", "block":
		return FormatBlockCSV, nil
	case "pageref", "zipf", "page":
		return FormatPageRef, nil
	case "strace", "syscall":
		return FormatStrace, nil
	}
	return 0, fmt.Errorf("adapt: unknown trace format %q (want bsd, blockcsv, pageref, or strace)", name)
}

// Source is the interface every adapter satisfies: a classed event
// stream with ingest statistics.
type Source interface {
	trace.ClassedSource
	Stats() Stats
}

// NewSource returns the adapter for a foreign format reading from r.
// FormatBSD is not a foreign format; callers open native traces with
// trace.NewReader or trace.ReadText.
func NewSource(f Format, r io.Reader) (Source, error) {
	switch f {
	case FormatBlockCSV:
		return NewBlockCSV(r, BlockCSVConfig{}), nil
	case FormatPageRef:
		return NewPageRef(r, PageRefConfig{}), nil
	case FormatStrace:
		return NewStrace(r, StraceConfig{}), nil
	}
	return nil, fmt.Errorf("adapt: no adapter for format %v", f)
}

// Byte-quantity sanity caps. Foreign traces describe real devices, so a
// request offset beyond 64 PB, a single request larger than 1 GB, or a
// syscall moving more than 64 PB is evidence of a damaged line, not a
// big machine — and rejecting them keeps every derived position inside
// int64 and keeps per-block bookkeeping loops bounded.
const (
	maxIOOffset   = int64(1) << 56 // largest accepted offset/position/length argument
	maxIORequest  = int64(1) << 30 // largest accepted single block-request size
	maxBlockShift = 20             // block/page sizes are clamped to [512, 1<<20]
)

// clampUnit forces a configured block or page size into a sane range.
func clampUnit(size int64, def int64) int64 {
	switch {
	case size <= 0:
		return def
	case size < 512:
		return 512
	case size > 1<<maxBlockShift:
		return 1 << maxBlockShift
	}
	return size
}

// Stats counts what an adapter did with its input. The accounting
// identity every adapter maintains: Lines = Records + Skipped + (1 if a
// terminal parse error ended the stream early, attributed to no bucket).
type Stats struct {
	// Lines is the number of input lines consumed (including skipped
	// ones, excluding a line that failed to parse).
	Lines int64
	// Records is the number of foreign records accepted and re-encoded.
	Records int64
	// Events is the number of native events emitted.
	Events int64
	// Skipped counts ignorable lines: blanks, comments, CSV headers,
	// strace noise (signals, exits, unknown syscalls, failed calls).
	Skipped int64
	// ClampedTimes counts records whose timestamp ran backwards and was
	// pulled up to the previous event's time.
	ClampedTimes int64
	// WarmupBlocks counts distinct blocks first referenced by a read
	// (block traces only): data that predates the trace.
	WarmupBlocks int64
	// SkippedReads counts read requests dropped by the warmup-skip
	// option (block traces only).
	SkippedReads int64
}

func (s Stats) String() string {
	return fmt.Sprintf("%d lines: %d records -> %d events, %d skipped, %d clamped times",
		s.Lines, s.Records, s.Events, s.Skipped, s.ClampedTimes)
}

// lineScanner wraps bufio.Scanner with line counting and a generous
// buffer (strace lines quote whole write payloads).
type lineScanner struct {
	sc   *bufio.Scanner
	line int
}

func newLineScanner(r io.Reader) *lineScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &lineScanner{sc: sc}
}

// next returns the next line and its 1-based number, or io.EOF.
func (s *lineScanner) next() (string, int, error) {
	if !s.sc.Scan() {
		if err := s.sc.Err(); err != nil {
			return "", s.line, err
		}
		return "", s.line, io.EOF
	}
	s.line++
	return s.sc.Text(), s.line, nil
}

// timeline normalizes foreign timestamps: the first record defines time
// zero, and later times are clamped monotone non-decreasing.
type timeline struct {
	base    trace.Time
	prev    trace.Time
	started bool
}

// clamp rebases t against the first observed timestamp and pulls it up
// to the previous emission time if it ran backwards. It reports whether
// clamping happened.
func (tl *timeline) clamp(t trace.Time) (trace.Time, bool) {
	if !tl.started {
		tl.base = t
		tl.prev = 0
		tl.started = true
		return 0, false
	}
	t -= tl.base
	if t < tl.prev {
		return tl.prev, true
	}
	tl.prev = t
	return t, false
}

// emitter is the shared event-queue half of an adapter: parsed records
// push a short burst of native events, Next pops them one at a time,
// and terminal errors (parse failures, read errors) are sticky.
type emitter struct {
	pending []trace.Event
	pos     int
	err     error
	stats   Stats
}

func (em *emitter) push(e trace.Event) {
	em.pending = append(em.pending, e)
	em.stats.Events++
}

// pop returns the next queued event, if any.
func (em *emitter) pop() (trace.Event, bool) {
	if em.pos < len(em.pending) {
		e := em.pending[em.pos]
		em.pos++
		return e, true
	}
	em.pending = em.pending[:0]
	em.pos = 0
	return trace.Event{}, false
}

// fail records a sticky terminal error and returns it.
func (em *emitter) fail(err error) error {
	if em.err == nil {
		em.err = err
	}
	return em.err
}
