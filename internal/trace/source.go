package trace

import "io"

// Source is a pull-stream of events in non-decreasing time order. Next
// returns io.EOF at a clean end of stream. *Reader satisfies Source, so
// any binary trace file can be consumed as a stream, and MergeSource
// combines several Sources into one without materializing any of them.
//
// Source is the seam between the streaming halves of the repository: the
// workload generator emits shard streams, MergeSource interleaves them,
// and the analyzer and tape builder consume the merged stream one event
// at a time, so no stage ever needs the whole trace in memory.
type Source interface {
	Next() (Event, error)
}

// Compile-time check: a binary trace reader is a Source.
var _ Source = (*Reader)(nil)

// SliceSource adapts an in-memory event slice to a Source. It never
// returns an error other than io.EOF.
type SliceSource struct {
	events []Event
	pos    int
}

// NewSliceSource returns a Source that yields events in order.
func NewSliceSource(events []Event) *SliceSource {
	return &SliceSource{events: events}
}

// Next returns the next event or io.EOF.
func (s *SliceSource) Next() (Event, error) {
	if s.pos >= len(s.events) {
		return Event{}, io.EOF
	}
	e := s.events[s.pos]
	s.pos++
	return e, nil
}

// ReadSource drains a Source into memory. It is the streaming analogue of
// Reader.ReadAll; tests and the in-memory Merge use it.
func ReadSource(src Source) ([]Event, error) {
	var out []Event
	buf := GetBatch()
	defer PutBatch(buf)
	for {
		n, err := ReadBatch(src, buf)
		out = append(out, buf[:n]...)
		if n == 0 {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
	}
}

// CopySource writes every event of src to w and returns the number of
// events copied. It is the constant-memory pipe from any Source to a
// binary trace file.
func CopySource(w *Writer, src Source) (int64, error) {
	var n int64
	buf := GetBatch()
	defer PutBatch(buf)
	for {
		k, err := ReadBatch(src, buf)
		if k == 0 {
			if err == io.EOF {
				return n, nil
			}
			return n, err
		}
		for _, e := range buf[:k] {
			if err := w.Write(e); err != nil {
				return n, err
			}
			n++
		}
	}
}

// FuncSource adapts a Next-shaped function to a Source.
type FuncSource func() (Event, error)

// Next calls the function.
func (f FuncSource) Next() (Event, error) { return f() }

// WindowSource yields the sub-trace of src in [from, to), applying the
// same fix-ups as Window: seeks and closes whose open fell before the
// window are dropped, and times are rebased so the window starts at zero.
// It holds only the set of opens seen inside the window, not the events.
func WindowSource(src Source, from, to Time) Source {
	open := make(map[OpenID]bool)
	return FuncSource(func() (Event, error) {
		for {
			e, err := src.Next()
			if err != nil {
				return Event{}, err
			}
			if e.Time < from {
				continue
			}
			if e.Time >= to {
				// Sources are time-ordered: nothing after this point
				// can fall inside the window.
				return Event{}, io.EOF
			}
			switch e.Kind {
			case KindCreate, KindOpen:
				open[e.OpenID] = true
			case KindClose:
				if !open[e.OpenID] {
					continue // opened before the window
				}
				delete(open, e.OpenID)
			case KindSeek:
				if !open[e.OpenID] {
					continue
				}
			}
			e.Time -= from
			return e, nil
		}
	})
}
