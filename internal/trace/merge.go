package trace

import "container/heap"

// Merge interleaves several time-ordered traces into one, remapping file,
// open, and user identifiers so events from different sources can never
// collide. It models the scenario that motivated the paper: several
// machines' workloads converging on one shared file server. Identifier i
// from source s becomes i*len(sources)+s, which is collision-free and
// preserves uniqueness within each source; users on different machines
// are distinct people and stay distinct.
//
// Each source must itself be in non-decreasing time order (as every trace
// this repository produces is); ties across sources preserve source order.
func Merge(sources ...[]Event) []Event {
	n := len(sources)
	if n == 0 {
		return nil
	}
	if n == 1 {
		out := make([]Event, len(sources[0]))
		copy(out, sources[0])
		return out
	}
	remap := func(e Event, s int) Event {
		if e.OpenID != 0 || e.Kind == KindCreate || e.Kind == KindOpen || e.Kind == KindClose || e.Kind == KindSeek {
			e.OpenID = e.OpenID*OpenID(n) + OpenID(s)
		}
		if e.File != 0 {
			e.File = e.File*FileID(n) + FileID(s)
		}
		e.User = e.User*UserID(n) + UserID(s)
		return e
	}

	total := 0
	for _, src := range sources {
		total += len(src)
	}
	out := make([]Event, 0, total)

	h := &mergeHeap{}
	for s, src := range sources {
		if len(src) > 0 {
			h.items = append(h.items, mergeItem{events: src, source: s})
		}
	}
	heap.Init(h)
	for h.Len() > 0 {
		it := &h.items[0]
		out = append(out, remap(it.events[it.pos], it.source))
		it.pos++
		if it.pos == len(it.events) {
			heap.Pop(h)
		} else {
			heap.Fix(h, 0)
		}
	}
	return out
}

type mergeItem struct {
	events []Event
	pos    int
	source int
}

type mergeHeap struct {
	items []mergeItem
}

func (h *mergeHeap) Len() int { return len(h.items) }
func (h *mergeHeap) Less(i, j int) bool {
	a, b := &h.items[i], &h.items[j]
	ta, tb := a.events[a.pos].Time, b.events[b.pos].Time
	if ta != tb {
		return ta < tb
	}
	return a.source < b.source
}
func (h *mergeHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x any)    { h.items = append(h.items, x.(mergeItem)) }
func (h *mergeHeap) Pop() any {
	old := h.items
	it := old[len(old)-1]
	h.items = old[:len(old)-1]
	return it
}
