package trace

import (
	"container/heap"
	"io"
)

// RemapIDs renames the identifiers of an event from source s of n merged
// sources so events from different sources can never collide: identifier
// i becomes i*n+s, which is collision-free and preserves uniqueness
// within each source. Users on different machines are distinct people and
// stay distinct. Both the in-memory Merge and the streaming MergeSource
// apply exactly this remapping, and the sharded workload generator merges
// its shard streams through MergeSource, so a sharded fleet and a merged
// multi-machine trace follow one identifier contract.
func RemapIDs(e Event, n, s int) Event {
	if e.OpenID != 0 || e.Kind == KindCreate || e.Kind == KindOpen || e.Kind == KindClose || e.Kind == KindSeek {
		e.OpenID = e.OpenID*OpenID(n) + OpenID(s)
	}
	if e.File != 0 {
		e.File = e.File*FileID(n) + FileID(s)
	}
	e.User = e.User*UserID(n) + UserID(s)
	return e
}

// MergeSource interleaves several time-ordered Sources into one
// time-ordered stream with identifier remapping (see RemapIDs). It holds
// exactly one buffered event per live source — memory is O(sources), not
// O(events) — which is what lets a fleet of generated shards or a set of
// on-disk machine traces merge without ever materializing.
//
// Each source must itself be in non-decreasing time order (as every trace
// this repository produces is); ties across sources preserve source
// order, so the merged order is a pure function of the source streams and
// never of scheduling.
type MergeSource struct {
	n       int
	pending []mergeItem // sources not yet loaded into the heap
	items   []mergeItem // min-heap on (head.Time, source index)
	err     error
}

type mergeItem struct {
	head   Event
	src    Source
	source int
}

// NewMergeSource creates a merged stream over the sources. It models the
// scenario that motivated the paper: several machines' workloads
// converging on one shared file server.
func NewMergeSource(sources ...Source) *MergeSource {
	m := &MergeSource{n: len(sources)}
	for s, src := range sources {
		m.pending = append(m.pending, mergeItem{src: src, source: s})
	}
	return m
}

// Next returns the earliest pending event across all sources, remapped,
// or io.EOF when every source is drained. A source error ends the stream
// and is returned from every subsequent call.
func (m *MergeSource) Next() (Event, error) {
	if m.err != nil {
		return Event{}, m.err
	}
	if m.pending != nil {
		if _, err := m.prime(); err != nil {
			return Event{}, err
		}
	}
	if len(m.items) == 0 {
		return Event{}, io.EOF
	}
	it := &m.items[0]
	out := RemapIDs(it.head, m.n, it.source)
	e, err := it.src.Next()
	switch {
	case err == io.EOF:
		m.popLead()
	case err != nil:
		m.err = err
		return Event{}, err
	default:
		it.head = e
		m.fixLead()
	}
	return out, nil
}

// prime loads the first event of every source into the heap. It runs
// once, on the first pull.
func (m *MergeSource) prime() (int, error) {
	for _, it := range m.pending {
		e, err := it.src.Next()
		if err == io.EOF {
			continue
		}
		if err != nil {
			m.err = err
			return 0, err
		}
		it.head = e
		m.items = append(m.items, it)
	}
	m.pending = nil
	heap.Init(m)
	return len(m.items), nil
}

// popLead removes the drained lead source; fixLead restores the heap
// after the lead's head advanced.
func (m *MergeSource) popLead() { heap.Pop(m) }
func (m *MergeSource) fixLead() { heap.Fix(m, 0) }

func (m *MergeSource) Len() int { return len(m.items) }
func (m *MergeSource) Less(i, j int) bool {
	a, b := &m.items[i], &m.items[j]
	if a.head.Time != b.head.Time {
		return a.head.Time < b.head.Time
	}
	return a.source < b.source
}
func (m *MergeSource) Swap(i, j int) { m.items[i], m.items[j] = m.items[j], m.items[i] }
func (m *MergeSource) Push(x any)    { m.items = append(m.items, x.(mergeItem)) }
func (m *MergeSource) Pop() any {
	old := m.items
	it := old[len(old)-1]
	m.items = old[:len(old)-1]
	return it
}

// Merge interleaves several time-ordered traces into one, remapping file,
// open, and user identifiers so events from different sources can never
// collide (see RemapIDs). It is the in-memory convenience over
// MergeSource; large traces should merge Sources directly.
func Merge(sources ...[]Event) []Event {
	n := len(sources)
	if n == 0 {
		return nil
	}
	if n == 1 {
		out := make([]Event, len(sources[0]))
		copy(out, sources[0])
		return out
	}
	total := 0
	ss := make([]Source, n)
	for i, src := range sources {
		total += len(src)
		ss[i] = NewSliceSource(src)
	}
	out := make([]Event, 0, total)
	m := NewMergeSource(ss...)
	for {
		e, err := m.Next()
		if err != nil { // slice sources only ever return io.EOF
			return out
		}
		out = append(out, e)
	}
}
