package trace

import "testing"

// TestPutBatchPoolHygiene pins the pool's invariant: whatever shapes of
// slice are thrown at PutBatch, GetBatch only ever returns full-length
// DefaultBatchSize batches. A short-capacity slice making it into the
// pool would surface as a short read buffer in every batched consumer.
func TestPutBatchPoolHygiene(t *testing.T) {
	// Attempted poisonings: allocated elsewhere, resliced short with a
	// three-index expression, carved from a larger array with an offset
	// (capacity shrinks), and grown past pool size by append.
	PutBatch(make([]Event, 10))
	PutBatch(make([]Event, 0, DefaultBatchSize/2))
	PutBatch(GetBatch()[:0:100])
	PutBatch(GetBatch()[10:])
	big := make([]Event, 4*DefaultBatchSize)
	PutBatch(big)
	PutBatch(append(GetBatch(), Event{})) // append reallocated: cap > DefaultBatchSize

	// Legitimate returns in resliced form must come back full length.
	PutBatch(GetBatch()[:0])
	PutBatch(GetBatch()[:7])

	for i := 0; i < 64; i++ {
		b := GetBatch()
		if len(b) != DefaultBatchSize || cap(b) != DefaultBatchSize {
			t.Fatalf("GetBatch %d returned len=%d cap=%d, want %d/%d",
				i, len(b), cap(b), DefaultBatchSize, DefaultBatchSize)
		}
		defer PutBatch(b)
	}
}
