package trace

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

// The binary reader must never panic, whatever bytes it is fed: corrupt
// traces should surface as errors. These tests are a deterministic,
// offline stand-in for a fuzzer.

func readAllSafely(t *testing.T, data []byte) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("reader panicked on %d bytes: %v", len(data), r)
		}
	}()
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return
	}
	for i := 0; i < 1_000_000; i++ {
		if _, err := r.Next(); err != nil {
			return
		}
	}
	t.Fatalf("reader produced over a million events from %d bytes", len(data))
}

func TestReaderSurvivesRandomGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		n := rng.Intn(200)
		data := make([]byte, n)
		rng.Read(data)
		readAllSafely(t, data)
	}
}

func TestReaderSurvivesGarbageWithValidHeader(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		n := rng.Intn(300)
		data := make([]byte, 5+n)
		copy(data, []byte{'B', 'S', 'D', 'T', Version})
		rng.Read(data[5:])
		readAllSafely(t, data)
	}
}

func TestReaderSurvivesBitFlips(t *testing.T) {
	events := randomTrace(3, 200)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		data := append([]byte(nil), valid...)
		flips := rng.Intn(8) + 1
		for f := 0; f < flips; f++ {
			pos := rng.Intn(len(data))
			data[pos] ^= 1 << rng.Intn(8)
		}
		readAllSafely(t, data)
	}
}

func TestReaderSurvivesTruncationAtEveryByte(t *testing.T) {
	events := randomTrace(5, 40)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	for cut := 0; cut <= len(valid); cut++ {
		readAllSafely(t, valid[:cut])
	}
}

func TestParseEventSurvivesGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	alphabet := []byte("0123456789 -abcdefghijklmnopqrstuvwxyz\t")
	for i := 0; i < 2000; i++ {
		n := rng.Intn(60)
		line := make([]byte, n)
		for j := range line {
			line[j] = alphabet[rng.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ParseEvent panicked on %q: %v", line, r)
				}
			}()
			ParseEvent(string(line))
		}()
	}
}

// Property: whatever the reader successfully decodes from a corrupted
// stream re-encodes without error (decoded events are always structurally
// valid).
func TestDecodedEventsReencodable(t *testing.T) {
	events := randomTrace(7, 100)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		data := append([]byte(nil), valid...)
		data[5+rng.Intn(len(data)-5)] ^= byte(1 + rng.Intn(255))
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			continue
		}
		w2 := NewWriter(io.Discard)
		for {
			e, err := r.Next()
			if err != nil {
				break
			}
			if err := w2.Write(e); err != nil {
				t.Fatalf("decoded event not re-encodable: %v (%+v)", err, e)
			}
		}
	}
}
