package trace

import "fmt"

// Validator checks a stream of events for the structural invariants that
// the analyses depend on. It is used in tests to prove that the workload
// generator emits well-formed traces, and by the command-line tools to
// reject corrupt input early instead of producing silently wrong tables.
//
// Invariants checked:
//
//   - event times are non-decreasing;
//   - every open id is introduced by exactly one open or create;
//   - close and seek refer to an open id that is currently open;
//   - a seek's previous position matches the position implied by the
//     event history (position starts at 0 on open — reading and writing
//     are implicitly sequential in 4.2 BSD — and can only grow between
//     position-recording events);
//   - positions and sizes are non-negative, and modes are valid.
type Validator struct {
	prev     Time
	started  bool
	open     map[OpenID]*openState
	errs     []error
	maxErrs  int
	counts   Counts
	firstBad *Event
	current  Event
}

type openState struct {
	file FileID
	mode Mode
	pos  int64 // position as of the last position-recording event
}

// NewValidator creates a Validator that accumulates up to maxErrs errors
// (0 means a reasonable default).
func NewValidator(maxErrs int) *Validator {
	if maxErrs <= 0 {
		maxErrs = 20
	}
	return &Validator{open: make(map[OpenID]*openState), maxErrs: maxErrs}
}

func (v *Validator) errorf(format string, args ...any) {
	if v.firstBad == nil {
		bad := v.current
		v.firstBad = &bad
	}
	if len(v.errs) < v.maxErrs {
		v.errs = append(v.errs, fmt.Errorf(format, args...))
	}
}

// Check validates one event in stream order.
func (v *Validator) Check(e Event) {
	v.current = e
	v.counts.Add(e)
	if !e.Kind.Valid() {
		v.errorf("t=%v: invalid kind %d", e.Time, uint8(e.Kind))
		return
	}
	if v.started && e.Time < v.prev {
		v.errorf("t=%v: time went backwards (previous %v)", e.Time, v.prev)
	}
	v.prev = e.Time
	v.started = true

	switch e.Kind {
	case KindCreate, KindOpen:
		if e.Size < 0 {
			v.errorf("t=%v: %v with negative size %d", e.Time, e.Kind, e.Size)
		}
		if e.Kind == KindCreate && e.Size != 0 {
			v.errorf("t=%v: create of file %d with nonzero size %d", e.Time, e.File, e.Size)
		}
		if e.Mode != ReadOnly && e.Mode != WriteOnly && e.Mode != ReadWrite {
			v.errorf("t=%v: invalid mode %d", e.Time, uint8(e.Mode))
		}
		if _, dup := v.open[e.OpenID]; dup {
			v.errorf("t=%v: open id %d reused while open", e.Time, e.OpenID)
			return
		}
		v.open[e.OpenID] = &openState{file: e.File, mode: e.Mode}
	case KindClose:
		st, ok := v.open[e.OpenID]
		if !ok {
			v.errorf("t=%v: close of unknown open id %d", e.Time, e.OpenID)
			return
		}
		if e.NewPos < st.pos {
			v.errorf("t=%v: close of open id %d at position %d before last known position %d",
				e.Time, e.OpenID, e.NewPos, st.pos)
		}
		delete(v.open, e.OpenID)
	case KindSeek:
		st, ok := v.open[e.OpenID]
		if !ok {
			v.errorf("t=%v: seek on unknown open id %d", e.Time, e.OpenID)
			return
		}
		if e.OldPos < 0 || e.NewPos < 0 {
			v.errorf("t=%v: seek with negative position (%d -> %d)", e.Time, e.OldPos, e.NewPos)
		}
		if e.OldPos < st.pos {
			v.errorf("t=%v: seek on open id %d from %d before last known position %d",
				e.Time, e.OpenID, e.OldPos, st.pos)
		}
		st.pos = e.NewPos
	case KindUnlink:
		// An unlink may name a file the trace never opened (created before
		// tracing began), so there is nothing more to check.
	case KindTruncate:
		if e.Size < 0 {
			v.errorf("t=%v: truncate of file %d to negative length %d", e.Time, e.File, e.Size)
		}
	case KindExec:
		if e.Size < 0 {
			v.errorf("t=%v: execve of file %d with negative size %d", e.Time, e.File, e.Size)
		}
	}
}

// Finish reports opens that never closed. A live system's trace ends with
// some files open, so unclosed opens are returned separately rather than
// as errors; the caller decides whether they matter.
func (v *Validator) Finish() (unclosed int) {
	return len(v.open)
}

// Errs returns the accumulated validation errors.
func (v *Validator) Errs() []error { return v.errs }

// FirstBad returns the first event that failed a check, verbatim, so a
// corrupt-input report can show the offending record rather than only a
// message about it. It returns nil while everything has validated.
func (v *Validator) FirstBad() *Event { return v.firstBad }

// Stats returns the tally of events seen per kind, valid or not.
func (v *Validator) Stats() Counts { return v.counts }

// Validate checks a whole in-memory trace and returns the errors plus the
// number of opens left unclosed at the end.
func Validate(events []Event) (errs []error, unclosed int) {
	v := NewValidator(0)
	for _, e := range events {
		v.Check(e)
	}
	return v.Errs(), v.Finish()
}
