package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"

	"bsdtrace/internal/stats"
)

// Resumable encoder and validator state, for the fstraced checkpoint
// file: a daemon restart restores the exact positions of its encoders
// and validators so the resumed run is indistinguishable — byte for
// byte — from one that never stopped.

// NewResumedWriterV2 creates a version-2 Writer that continues a logical
// stream from record index count with delta-time base prev: the header
// is followed by a checkpoint carrying that position, so a reader of the
// resumed stream decodes absolute times correctly and reports exactly
// count pre-resume records as skipped. Record encoding after the resume
// point is byte-identical to what an uninterrupted writer would have
// produced.
func NewResumedWriterV2(w io.Writer, interval int, count int64, prev Time) *Writer {
	if interval <= 0 {
		interval = DefaultCheckpointInterval
	}
	return &Writer{
		w:          bufio.NewWriterSize(w, 1<<16),
		version:    Version2,
		ckInterval: interval,
		count:      count,
		prev:       prev,
		resumed:    true,
	}
}

// WriterState is a version-1 Writer's resumable position: how many
// records it has written and the delta-time base for the next one.
// The encoded size of every future record is a function of exactly this
// state, so restoring it keeps byte counts (analyzer EncodedSize)
// continuous across a checkpoint restore.
type WriterState struct {
	Count int64
	Prev  Time
	Begun bool
}

// State returns the writer's resumable position. Call Flush first if the
// underlying stream's byte count must agree.
func (w *Writer) State() WriterState {
	return WriterState{Count: w.count, Prev: w.prev, Begun: w.begun}
}

// SetState restores a position captured by State. It is valid only on a
// fresh version-1 writer (nothing written yet); the caller is
// responsible for the underlying stream already holding the bytes the
// restored position implies.
func (w *Writer) SetState(st WriterState) error {
	if w.version != Version {
		return errors.New("trace: SetState requires a version-1 writer")
	}
	if w.begun || w.count != 0 {
		return errors.New("trace: SetState on a writer that has already written")
	}
	w.count, w.prev, w.begun = st.Count, st.Prev, st.Begun
	return nil
}

const validatorStateVersion = 1

// AppendState appends the validator's complete state: stream position,
// open-handle table (in sorted order, so the encoding is deterministic),
// per-kind counts, accumulated error strings, and the first offending
// event. A restored validator continues exactly where the original
// stopped — same future errors, same Finish count.
func (v *Validator) AppendState(buf []byte) []byte {
	buf = stats.AppendUvarint(buf, validatorStateVersion)
	buf = stats.AppendVarint(buf, int64(v.prev))
	buf = appendStateBool(buf, v.started)
	buf = stats.AppendVarint(buf, int64(v.maxErrs))

	buf = stats.AppendUvarint(buf, uint64(len(v.open)))
	ids := make([]OpenID, 0, len(v.open))
	for id := range v.open {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		st := v.open[id]
		buf = stats.AppendUvarint(buf, uint64(id))
		buf = stats.AppendUvarint(buf, uint64(st.file))
		buf = stats.AppendUvarint(buf, uint64(st.mode))
		buf = stats.AppendVarint(buf, st.pos)
	}

	for _, c := range v.counts.ByKind {
		buf = stats.AppendVarint(buf, c)
	}
	buf = stats.AppendVarint(buf, v.counts.Total)

	buf = stats.AppendUvarint(buf, uint64(len(v.errs)))
	for _, e := range v.errs {
		s := e.Error()
		buf = stats.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}

	if v.firstBad != nil {
		buf = append(buf, 1)
		buf = AppendEventState(buf, *v.firstBad)
	} else {
		buf = append(buf, 0)
	}
	return buf
}

// DecodeState replaces the validator's state with one appended by
// AppendState, returning the remaining bytes. It never panics on corrupt
// input.
func (v *Validator) DecodeState(buf []byte) ([]byte, error) {
	ver, buf, err := stats.DecodeUvarint(buf)
	if err != nil {
		return nil, err
	}
	if ver != validatorStateVersion {
		return nil, fmt.Errorf("trace: validator state version %d, want %d", ver, validatorStateVersion)
	}
	var x int64
	if x, buf, err = stats.DecodeVarint(buf); err != nil {
		return nil, err
	}
	prev := Time(x)
	started, buf, err := decodeStateBool(buf)
	if err != nil {
		return nil, err
	}
	if x, buf, err = stats.DecodeVarint(buf); err != nil {
		return nil, err
	}
	maxErrs := int(x)
	if maxErrs <= 0 || maxErrs > 1<<20 {
		return nil, stats.ErrCorruptState
	}

	n, buf, err := stats.DecodeUvarint(buf)
	if err != nil {
		return nil, err
	}
	if n > 1<<28 {
		return nil, stats.ErrCorruptState
	}
	open := make(map[OpenID]*openState, n)
	for i := uint64(0); i < n; i++ {
		var id, file, mode uint64
		if id, buf, err = stats.DecodeUvarint(buf); err != nil {
			return nil, err
		}
		if file, buf, err = stats.DecodeUvarint(buf); err != nil {
			return nil, err
		}
		if mode, buf, err = stats.DecodeUvarint(buf); err != nil {
			return nil, err
		}
		var pos int64
		if pos, buf, err = stats.DecodeVarint(buf); err != nil {
			return nil, err
		}
		open[OpenID(id)] = &openState{file: FileID(file), mode: Mode(mode), pos: pos}
	}

	var counts Counts
	for i := range counts.ByKind {
		if counts.ByKind[i], buf, err = stats.DecodeVarint(buf); err != nil {
			return nil, err
		}
	}
	if counts.Total, buf, err = stats.DecodeVarint(buf); err != nil {
		return nil, err
	}

	nerrs, buf, err := stats.DecodeUvarint(buf)
	if err != nil {
		return nil, err
	}
	if nerrs > uint64(maxErrs) {
		return nil, stats.ErrCorruptState
	}
	errs := make([]error, 0, nerrs)
	for i := uint64(0); i < nerrs; i++ {
		var slen uint64
		if slen, buf, err = stats.DecodeUvarint(buf); err != nil {
			return nil, err
		}
		if slen > 1<<16 || uint64(len(buf)) < slen {
			return nil, stats.ErrCorruptState
		}
		errs = append(errs, errors.New(string(buf[:slen])))
		buf = buf[slen:]
	}

	var firstBad *Event
	hasBad, buf, err := decodeStateBool(buf)
	if err != nil {
		return nil, err
	}
	if hasBad {
		var e Event
		if e, buf, err = DecodeEventState(buf); err != nil {
			return nil, err
		}
		firstBad = &e
	}

	v.prev = prev
	v.started = started
	v.maxErrs = maxErrs
	v.open = open
	v.counts = counts
	v.errs = errs
	v.firstBad = firstBad
	return buf, nil
}

// AppendEventState appends a flat, kind-independent encoding of one
// event (all fields, unconditionally) for state blobs. It is not the
// trace wire format: no delta encoding, no header, no framing.
func AppendEventState(buf []byte, e Event) []byte {
	buf = stats.AppendVarint(buf, int64(e.Time))
	buf = append(buf, byte(e.Kind))
	buf = stats.AppendUvarint(buf, uint64(e.OpenID))
	buf = stats.AppendUvarint(buf, uint64(e.File))
	buf = stats.AppendUvarint(buf, uint64(e.User))
	buf = append(buf, byte(e.Mode))
	buf = stats.AppendVarint(buf, e.Size)
	buf = stats.AppendVarint(buf, e.OldPos)
	return stats.AppendVarint(buf, e.NewPos)
}

// DecodeEventState decodes an event appended by AppendEventState.
func DecodeEventState(buf []byte) (Event, []byte, error) {
	var e Event
	var x int64
	var u uint64
	var err error
	if x, buf, err = stats.DecodeVarint(buf); err != nil {
		return e, nil, err
	}
	e.Time = Time(x)
	if len(buf) < 1 {
		return e, nil, stats.ErrCorruptState
	}
	e.Kind, buf = Kind(buf[0]), buf[1:]
	if u, buf, err = stats.DecodeUvarint(buf); err != nil {
		return e, nil, err
	}
	e.OpenID = OpenID(u)
	if u, buf, err = stats.DecodeUvarint(buf); err != nil {
		return e, nil, err
	}
	e.File = FileID(u)
	if u, buf, err = stats.DecodeUvarint(buf); err != nil {
		return e, nil, err
	}
	e.User = UserID(u)
	if len(buf) < 1 {
		return e, nil, stats.ErrCorruptState
	}
	e.Mode, buf = Mode(buf[0]), buf[1:]
	if e.Size, buf, err = stats.DecodeVarint(buf); err != nil {
		return e, nil, err
	}
	if e.OldPos, buf, err = stats.DecodeVarint(buf); err != nil {
		return e, nil, err
	}
	if e.NewPos, buf, err = stats.DecodeVarint(buf); err != nil {
		return e, nil, err
	}
	return e, buf, nil
}

func appendStateBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func decodeStateBool(buf []byte) (bool, []byte, error) {
	if len(buf) < 1 {
		return false, nil, stats.ErrCorruptState
	}
	return buf[0] != 0, buf[1:], nil
}
