// Package trace defines the logical-level file system trace format from the
// paper's Table II, together with streaming binary and text codecs and a
// stream validator.
//
// The tracer deliberately records no individual read or write operations.
// Because reading and writing in UNIX are implicitly sequential, the access
// position recorded when a file is opened and closed, plus the before and
// after positions of every explicit seek, completely identify the byte
// ranges that were transferred. The analyses deduce transfers from those
// positions and bill each transfer at the time of the next close or seek
// event for the same open file (paper §3.1).
//
// The events and their fields (paper Table II):
//
//	create    time, open id, file id, user id, mode, file size (0)
//	open      time, open id, file id, user id, mode, file size at open
//	close     time, open id, final position
//	seek      time, open id, previous position, new position
//	unlink    time, file id
//	truncate  time, file id, new length
//	execve    time, file id, user id, file size
//
// A create is an open that makes the file new: either the file did not
// exist, or it was truncated to length zero by the open. Times are in
// milliseconds from the start of the trace; the 1985 tracer was accurate to
// roughly 10 ms, and the workload generator quantizes to the same.
package trace

import (
	"fmt"
	"time"
)

// Time is a trace timestamp in milliseconds from the start of the trace.
type Time int64

// Millisecond and friends are convenience units for Time arithmetic.
const (
	Millisecond Time = 1
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
)

// Seconds returns the timestamp as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time as a duration ("1.5s", "20m0s"), which is what
// the report tables print for intervals.
func (t Time) String() string {
	return (time.Duration(t) * time.Millisecond).String()
}

// FileID uniquely identifies a file for the life of the trace. IDs are
// never reused even after the file is deleted, so lifetime analyses can
// attribute an unlink to exactly one incarnation of a file.
type FileID uint64

// UserID identifies the account under which an operation was invoked.
type UserID uint32

// OpenID uniquely identifies one open system call, to avoid confusion
// between concurrent accesses to the same file.
type OpenID uint64

// Kind discriminates the event types of Table II.
type Kind uint8

// The event kinds, in the order the paper's Table III tabulates them.
const (
	KindInvalid Kind = iota
	KindCreate
	KindOpen
	KindClose
	KindSeek
	KindUnlink
	KindTruncate
	KindExec
	numKinds
)

// NumKinds is the number of valid event kinds.
const NumKinds = int(numKinds) - 1

var kindNames = [...]string{
	KindInvalid:  "invalid",
	KindCreate:   "create",
	KindOpen:     "open",
	KindClose:    "close",
	KindSeek:     "seek",
	KindUnlink:   "unlink",
	KindTruncate: "truncate",
	KindExec:     "execve",
}

// String returns the event kind name used in the paper's tables.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Valid reports whether k is one of the defined event kinds.
func (k Kind) Valid() bool { return k > KindInvalid && k < numKinds }

// Mode is the access mode requested by an open or create.
type Mode uint8

// Access modes. The paper's Table V divides accesses into read-only,
// write-only, and read-write classes.
const (
	ReadOnly Mode = iota
	WriteOnly
	ReadWrite
)

// String returns the conventional name of the mode.
func (m Mode) String() string {
	switch m {
	case ReadOnly:
		return "read-only"
	case WriteOnly:
		return "write-only"
	case ReadWrite:
		return "read-write"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// CanRead reports whether the mode permits reading.
func (m Mode) CanRead() bool { return m == ReadOnly || m == ReadWrite }

// CanWrite reports whether the mode permits writing.
func (m Mode) CanWrite() bool { return m == WriteOnly || m == ReadWrite }

// Event is one trace record. It is a flat union of the per-kind fields of
// Table II; fields that a kind does not use are zero.
type Event struct {
	Time Time
	Kind Kind

	// OpenID is set for create, open, close, and seek.
	OpenID OpenID
	// File is set for create, open, unlink, truncate, and execve.
	File FileID
	// User is set for create, open, and execve.
	User UserID
	// Mode is set for create and open.
	Mode Mode
	// Size is the file size at open for create/open, the executed file's
	// size for execve, and the new length for truncate.
	Size int64
	// OldPos is the access position before a seek.
	OldPos int64
	// NewPos is the access position after a seek, or the final position
	// for a close.
	NewPos int64
}

// String renders the event in the text trace format (see text.go).
func (e Event) String() string { return formatEvent(e) }

// Counts tallies events by kind, as in the paper's Table III.
type Counts struct {
	ByKind [numKinds]int64
	Total  int64
}

// Add tallies one event.
func (c *Counts) Add(e Event) {
	if e.Kind.Valid() {
		c.ByKind[e.Kind]++
	}
	c.Total++
}

// Fraction returns the fraction of all events that are of kind k, or 0
// when the tally is empty.
func (c *Counts) Fraction(k Kind) float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.ByKind[k]) / float64(c.Total)
}
