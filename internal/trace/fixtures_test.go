package trace

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// fixtureEvents is the deterministic trace behind every committed
// fixture in testdata/: regenerating and checking use the same source.
func fixtureEvents() []Event { return randomTrace(41, 1000) }

// fixtureSpecs builds the committed corpus from the clean trace: each
// entry is one damage mode the resilient reader and the repair layer
// must survive.
func fixtureSpecs(t testing.TB) map[string][]byte {
	events := fixtureEvents()
	var v1 bytes.Buffer
	w := NewWriter(&v1)
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	v2 := encodeV2(t, events, 64)

	mutate := func(data []byte, f func([]byte)) []byte {
		out := append([]byte(nil), data...)
		f(out)
		return out
	}
	return map[string][]byte{
		"clean-v2.bin":                   append([]byte(nil), v2...),
		"corrupt-v1-truncated.bin":       v1.Bytes()[:len(v1.Bytes())*2/3],
		"corrupt-v1-bitflip.bin":         mutate(v1.Bytes(), func(b []byte) { b[len(b)/2] ^= 0x55 }),
		"corrupt-v2-segment-bitflip.bin": mutate(v2, func(b []byte) { b[len(b)/3] ^= 0x55 }),
		"corrupt-v2-garbage-fill.bin": mutate(v2, func(b []byte) {
			for i := len(b) / 2; i < len(b)/2+64; i++ {
				b[i] = 0xAA
			}
		}),
		"corrupt-v2-truncated.bin": append([]byte(nil), v2[:len(v2)*3/4]...),
	}
}

// TestRegenCorruptFixtures rewrites the committed corpus; it only runs
// when BSDTRACE_REGEN_FIXTURES=1, so the files stay stable otherwise.
func TestRegenCorruptFixtures(t *testing.T) {
	if os.Getenv("BSDTRACE_REGEN_FIXTURES") != "1" {
		t.Skip("set BSDTRACE_REGEN_FIXTURES=1 to rewrite testdata fixtures")
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range fixtureSpecs(t) {
		if err := os.WriteFile(filepath.Join("testdata", name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCorruptFixtureCorpus replays every committed fixture through the
// degraded-ingest pipeline: the reader must terminate without panic,
// whatever it accepts must repair into a stream that validates clean,
// and the undamaged fixture must come back complete with zero skips.
func TestCorruptFixtureCorpus(t *testing.T) {
	specs := fixtureSpecs(t)
	for name, want := range specs {
		path := filepath.Join("testdata", name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (regenerate with BSDTRACE_REGEN_FIXTURES=1)", path, err)
		}
		if !bytes.Equal(data, want) {
			t.Errorf("%s: committed fixture drifted from its spec (regenerate with BSDTRACE_REGEN_FIXTURES=1)", name)
			continue
		}

		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: header rejected: %v", name, err)
		}
		var got []Event
		var decodeErr error
		for {
			e, err := r.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				decodeErr = err // v1 damage: stream ends early, that is the contract
				break
			}
			got = append(got, e)
		}
		repaired, st := Recover(got)
		if st.Emitted != st.Events-st.Dropped+st.Synthesized {
			t.Errorf("%s: accounting identity broken: %+v", name, st)
		}
		if errs, _ := Validate(repaired); len(errs) > 0 {
			t.Errorf("%s: repaired fixture fails validation: %v", name, errs[0])
		}

		events := fixtureEvents()
		switch name {
		case "clean-v2.bin":
			if decodeErr != nil || !r.Skipped().Zero() || len(got) != len(events) {
				t.Errorf("clean-v2.bin: %d/%d events, skips %+v, err %v",
					len(got), len(events), r.Skipped(), decodeErr)
			}
		case "corrupt-v2-segment-bitflip.bin", "corrupt-v2-garbage-fill.bin", "corrupt-v2-truncated.bin":
			if decodeErr != nil {
				t.Errorf("%s: v2 reader gave up instead of resyncing: %v", name, decodeErr)
			}
			if len(got) == 0 {
				t.Errorf("%s: no events survived", name)
			}
			if r.Skipped().Zero() {
				t.Errorf("%s: damage left no trace in SkipStats", name)
			}
		default: // v1 damage: some prefix must survive
			if len(got) == 0 {
				t.Errorf("%s: no events survived", name)
			}
		}
	}
}
