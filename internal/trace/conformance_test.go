package trace_test

import (
	"bytes"
	"testing"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/trace/sourcetest"
)

// wellFormedTrace builds a valid event stream — times strictly
// increasing, every close matching a live open, every file introduced
// before it is referenced — so the repair sources are exact no-ops
// over it and every source implementation can share one `want`.
func wellFormedTrace(n int) []trace.Event {
	var events []trace.Event
	t := trace.Time(0)
	for i := 0; i < n; i++ {
		id := trace.OpenID(i + 1)
		file := trace.FileID(i + 1)
		user := trace.UserID(i%3 + 1)
		t += 10
		events = append(events, trace.Event{Time: t, Kind: trace.KindCreate,
			OpenID: id, File: file, User: user, Mode: trace.WriteOnly})
		t += 10
		events = append(events, trace.Event{Time: t, Kind: trace.KindClose,
			OpenID: id, NewPos: int64(512 * (i + 1))})
		t += 10
		events = append(events, trace.Event{Time: t, Kind: trace.KindOpen,
			OpenID: id, File: file, User: user, Mode: trace.ReadOnly, Size: int64(512 * (i + 1))})
		t += 10
		events = append(events, trace.Event{Time: t, Kind: trace.KindClose,
			OpenID: id, NewPos: int64(512 * (i + 1))})
	}
	return events
}

func encode(t *testing.T, events []trace.Event, v2 bool, interval int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	if v2 {
		w = trace.NewWriterV2(&buf, interval)
	}
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSourceConformance runs every Source implementation in the package
// through the shared pull-stream conformance suite.
func TestSourceConformance(t *testing.T) {
	want := wellFormedTrace(100) // 400 events: spans several default batches

	reader := func(v2 bool, interval int) sourcetest.Factory {
		data := encode(t, want, v2, interval)
		return func(t *testing.T) trace.Source {
			r, err := trace.NewReader(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			return r
		}
	}

	// MergeSource remaps identifiers across its inputs (each input is
	// one machine of a fleet), so its `want` is its own deterministic
	// output: one Next-drain defines the stream, and the suite then
	// holds every other access pattern to those bytes.
	mkMerge := func(t *testing.T) trace.Source {
		strands := make([][]trace.Event, 3)
		for i, e := range want {
			strands[i%3] = append(strands[i%3], e)
		}
		srcs := make([]trace.Source, len(strands))
		for i := range strands {
			srcs[i] = trace.NewSliceSource(strands[i])
		}
		return trace.NewMergeSource(srcs...)
	}
	var mergeWant []trace.Event
	{
		src := mkMerge(t)
		for {
			e, err := src.Next()
			if err != nil {
				break
			}
			mergeWant = append(mergeWant, e)
		}
		if len(mergeWant) != len(want) {
			t.Fatalf("merge drain yielded %d events, want %d", len(mergeWant), len(want))
		}
	}

	cases := []struct {
		name string
		mk   sourcetest.Factory
		want []trace.Event
	}{
		{"slice", func(t *testing.T) trace.Source {
			return trace.NewSliceSource(want)
		}, want},
		{"slice-empty", func(t *testing.T) trace.Source {
			return trace.NewSliceSource(nil)
		}, nil},
		{"reader-v1", reader(false, 0), want},
		{"reader-v2", reader(true, 7), want},
		{"merge", mkMerge, mergeWant},
		{"merge-empty", func(t *testing.T) trace.Source {
			return trace.NewMergeSource()
		}, nil},
		{"recover", func(t *testing.T) trace.Source {
			return trace.NewRecoverSource(trace.NewSliceSource(want))
		}, want},
		{"lenient", func(t *testing.T) trace.Source {
			return trace.NewLenientSource(trace.NewSliceSource(want))
		}, want},
		{"fanout-sub", func(t *testing.T) trace.Source {
			f := trace.NewFanout(1)
			sub := f.Source(0)
			t.Cleanup(sub.Cancel)
			go func() {
				for _, e := range want {
					if f.Write(e) != nil {
						break
					}
				}
				f.Close(nil)
			}()
			return sub
		}, want},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sourcetest.Run(t, tc.mk, tc.want)
		})
	}
}

// TestReaderStickyError pins terminal-error stickiness on the v1
// reader: a truncated stream keeps reporting the same decode error on
// every call after the first, through both access paths, with the
// intact prefix delivered.
func TestReaderStickyError(t *testing.T) {
	want := wellFormedTrace(100)
	data := encode(t, want, false, 0)
	cut := data[:len(data)-3] // mid-record truncation

	// Count the events the truncated stream still decodes cleanly.
	r, err := trace.NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	good := 0
	for {
		if _, err := r.Next(); err != nil {
			break
		}
		good++
	}
	if good == 0 || good >= len(want) {
		t.Fatalf("truncation produced %d good events of %d; want a mid-stream error", good, len(want))
	}

	sourcetest.RunSticky(t, func(t *testing.T) trace.Source {
		r, err := trace.NewReader(bytes.NewReader(cut))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}, good)
}
