// Package sim is the discrete-event engine that advances the simulated
// machine through virtual time. Workload actors schedule closures at
// absolute or relative virtual times; the engine runs them in time order,
// breaking ties by scheduling order so that a given seed always produces
// the same interleaving and therefore the same trace.
package sim

import (
	"container/heap"

	"bsdtrace/internal/trace"
)

// Engine is a single-goroutine discrete-event scheduler over virtual time.
type Engine struct {
	now   trace.Time
	queue eventQueue
	seq   uint64
}

type scheduled struct {
	at  trace.Time
	seq uint64
	fn  func()
}

type eventQueue []scheduled

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(scheduled)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = scheduled{}
	*q = old[:n-1]
	return it
}

// New creates an engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() trace.Time { return e.now }

// Pending returns the number of scheduled events not yet run.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past (t < Now) runs fn at the current time instead: the clock never
// moves backwards.
func (e *Engine) At(t trace.Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	heap.Push(&e.queue, scheduled{at: t, seq: e.seq, fn: fn})
	e.seq++
}

// After schedules fn to run d after the current time. Negative delays are
// clamped to zero.
func (e *Engine) After(d trace.Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Every schedules fn at now+d and then every interval thereafter, for as
// long as fn returns true. It is the engine's idiom for daemons (the
// network status daemons that rewrite their files every 180 seconds).
func (e *Engine) Every(d, interval trace.Time, fn func() bool) {
	if interval <= 0 {
		panic("sim: Every needs a positive interval")
	}
	var tick func()
	tick = func() {
		if fn() {
			e.After(interval, tick)
		}
	}
	e.After(d, tick)
}

// Step runs the earliest pending event, advancing the clock to its time.
// It reports whether an event was run.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	it := heap.Pop(&e.queue).(scheduled)
	e.now = it.at
	it.fn()
	return true
}

// Run processes events until the queue is empty or the next event is after
// the deadline. Events scheduled exactly at the deadline still run. The
// clock finishes at the time of the last event run (or the deadline if
// nothing remained).
func (e *Engine) Run(until trace.Time) {
	for len(e.queue) > 0 && e.queue[0].at <= until {
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
}
