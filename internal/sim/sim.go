// Package sim is the discrete-event engine that advances the simulated
// machine through virtual time. Workload actors schedule closures at
// absolute or relative virtual times; the engine runs them in time order,
// breaking ties by scheduling order so that a given seed always produces
// the same interleaving and therefore the same trace.
package sim

import (
	"bsdtrace/internal/trace"
)

// Engine is a single-goroutine discrete-event scheduler over virtual time.
type Engine struct {
	now   trace.Time
	queue []scheduled
	seq   uint64
}

type scheduled struct {
	at  trace.Time
	seq uint64
	fn  func()
}

// before is the queue's strict total order: time, then scheduling order.
// Keys are unique (seq never repeats), so the pop sequence is a pure
// function of the pushes regardless of the heap's internal layout.
func (a scheduled) before(b scheduled) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// The queue is a hand-rolled 4-ary min-heap rather than container/heap:
// the stdlib interface boxes every element through `any` on Push and Pop,
// which at generation rates costs one allocation per scheduled event —
// the single largest allocation source in the whole pipeline before it
// was removed. The 4-way branching halves the tree depth of the pop-heavy
// workload (every simulated event is one push and one pop) and keeps
// sibling comparisons inside one cache line of the slice.

func (e *Engine) push(it scheduled) {
	q := append(e.queue, it)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !q[i].before(q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	e.queue = q
}

func (e *Engine) pop() scheduled {
	q := e.queue
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = scheduled{} // release the closure
	q = q[:n]
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		least := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q[c].before(q[least]) {
				least = c
			}
		}
		if !q[least].before(q[i]) {
			break
		}
		q[i], q[least] = q[least], q[i]
		i = least
	}
	e.queue = q
	return top
}

// New creates an engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() trace.Time { return e.now }

// Pending returns the number of scheduled events not yet run.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past (t < Now) runs fn at the current time instead: the clock never
// moves backwards.
func (e *Engine) At(t trace.Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.push(scheduled{at: t, seq: e.seq, fn: fn})
	e.seq++
}

// After schedules fn to run d after the current time. Negative delays are
// clamped to zero.
func (e *Engine) After(d trace.Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Every schedules fn at now+d and then every interval thereafter, for as
// long as fn returns true. It is the engine's idiom for daemons (the
// network status daemons that rewrite their files every 180 seconds).
func (e *Engine) Every(d, interval trace.Time, fn func() bool) {
	if interval <= 0 {
		panic("sim: Every needs a positive interval")
	}
	var tick func()
	tick = func() {
		if fn() {
			e.After(interval, tick)
		}
	}
	e.After(d, tick)
}

// Step runs the earliest pending event, advancing the clock to its time.
// It reports whether an event was run.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	it := e.pop()
	e.now = it.at
	it.fn()
	return true
}

// Run processes events until the queue is empty or the next event is after
// the deadline. Events scheduled exactly at the deadline still run. The
// clock finishes at the time of the last event run (or the deadline if
// nothing remained).
func (e *Engine) Run(until trace.Time) {
	for len(e.queue) > 0 && e.queue[0].at <= until {
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
}
