package sim

import (
	"reflect"
	"testing"

	"bsdtrace/internal/trace"
)

func TestOrdering(t *testing.T) {
	e := New()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run(100)
	if !reflect.DeepEqual(order, []int{1, 2, 3}) {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 100 {
		t.Errorf("Now = %v, want deadline 100", e.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run(10)
	for i, v := range order {
		if v != i {
			t.Fatalf("ties not FIFO: %v", order)
		}
	}
}

func TestAfterAndClockAdvance(t *testing.T) {
	e := New()
	var at trace.Time
	e.At(100, func() {
		e.After(50, func() { at = e.Now() })
	})
	e.Run(1000)
	if at != 150 {
		t.Errorf("nested After ran at %v, want 150", at)
	}
}

func TestSchedulingInPastClamps(t *testing.T) {
	e := New()
	var ranAt trace.Time = -1
	e.At(100, func() {
		e.At(10, func() { ranAt = e.Now() }) // in the past
	})
	e.Run(200)
	if ranAt != 100 {
		t.Errorf("past event ran at %v, want clamped to 100", ranAt)
	}
}

func TestNegativeAfterClamps(t *testing.T) {
	e := New()
	ran := false
	e.After(-5, func() { ran = true })
	e.Run(0)
	if !ran {
		t.Errorf("negative After never ran")
	}
}

func TestRunRespectsDeadline(t *testing.T) {
	e := New()
	var ran []trace.Time
	for _, at := range []trace.Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { ran = append(ran, at) })
	}
	e.Run(25)
	if !reflect.DeepEqual(ran, []trace.Time{10, 20}) {
		t.Errorf("ran = %v", ran)
	}
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", e.Pending())
	}
	// Deadline-exact events run.
	e.Run(30)
	if !reflect.DeepEqual(ran, []trace.Time{10, 20, 30}) {
		t.Errorf("ran = %v after second Run", ran)
	}
}

func TestStep(t *testing.T) {
	e := New()
	if e.Step() {
		t.Errorf("Step on empty queue returned true")
	}
	n := 0
	e.At(5, func() { n++ })
	if !e.Step() || n != 1 || e.Now() != 5 {
		t.Errorf("Step did not run event: n=%d now=%v", n, e.Now())
	}
}

func TestEvery(t *testing.T) {
	e := New()
	count := 0
	e.Every(100, 50, func() bool {
		count++
		return count < 4
	})
	e.Run(10000)
	if count != 4 {
		t.Errorf("Every ran %d times, want 4", count)
	}
	if e.Pending() != 0 {
		t.Errorf("Every left events pending")
	}
}

func TestEveryPanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	New().Every(0, 0, func() bool { return false })
}
