// Streaming-vs-in-memory equivalence and memory guards for the scale
// engine: the streaming pipeline (sharded generation -> k-way merge ->
// incremental analyzer / tape builder) must produce byte-identical
// results to the materializing path it replaces, and its working state
// must not grow with the event count.
package bsdtrace

import (
	"bytes"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"bsdtrace/internal/analyzer"
	"bsdtrace/internal/trace"
	"bsdtrace/internal/workload"
	"bsdtrace/internal/xfer"
)

// equivDuration is 8 hours — the paper's full trace span — unless -short.
func equivDuration(t *testing.T) trace.Time {
	if testing.Short() {
		return 30 * trace.Minute
	}
	return 8 * trace.Hour
}

var (
	equivOnce   sync.Once
	equivEvents []trace.Event
	equivErr    error
)

// equivTrace generates the seed-1 A5 trace once per test binary at the
// widest duration any test asks for (tests and the generator agree on
// equivDuration, so -short never mixes durations).
func equivTrace(t *testing.T) []trace.Event {
	equivOnce.Do(func() {
		res, err := workload.Generate(workload.Config{
			Profile: "A5", Seed: 1, Duration: equivDuration(t),
		})
		if err != nil {
			equivErr = err
			return
		}
		equivEvents = res.Events
	})
	if equivErr != nil {
		t.Fatal(equivErr)
	}
	return equivEvents
}

// TestStreamingAnalysisEquivalence: the incremental analyzer fed one
// event at a time — through the binary codec, as fsanalyze consumes spill
// files — produces an Analysis identical to the in-memory Analyze on the
// full seed trace.
func TestStreamingAnalysisEquivalence(t *testing.T) {
	events := equivTrace(t)
	want := analyzer.Analyze(events, analyzer.Options{})

	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := analyzer.AnalyzeReader(r, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streaming Analysis diverges from in-memory Analysis")
	}
}

// TestStreamingTapeEquivalence: the incremental tape builder produces a
// tape identical to NewTape on the full seed trace.
func TestStreamingTapeEquivalence(t *testing.T) {
	events := equivTrace(t)
	want, err := xfer.NewTape(events)
	if err != nil {
		t.Fatal(err)
	}
	got, err := xfer.BuildTape(trace.NewSliceSource(events))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Ops, want.Ops) {
		t.Fatalf("streaming tape Ops diverge: %d vs %d", len(got.Ops), len(want.Ops))
	}
	if !reflect.DeepEqual(got.Transfers, want.Transfers) {
		t.Fatalf("streaming tape Transfers diverge: %d vs %d", len(got.Transfers), len(want.Transfers))
	}
	if !reflect.DeepEqual(got.OldSizes, want.OldSizes) {
		t.Fatalf("streaming tape OldSizes diverge")
	}
	if got.Unclosed != want.Unclosed {
		t.Fatalf("streaming tape Unclosed = %d, want %d", got.Unclosed, want.Unclosed)
	}
}

// TestShardedGenerationDeterministic: the command-level determinism
// contract — same seed and shard count, same merged fleet trace; and one
// shard is the unsharded trace exactly.
func TestShardedGenerationDeterministic(t *testing.T) {
	cfg := workload.Config{Profile: "A5", Seed: 1, Duration: 20 * trace.Minute, Shards: 4}
	a, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatal("sharded generation not run-to-run deterministic")
	}

	cfg.Shards = 1
	one, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 0
	plain, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one.Events, plain.Events) {
		t.Fatal("Shards=1 changed the trace")
	}
}

// allocDelta measures heap bytes allocated by f.
func allocDelta(f func()) uint64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

// TestStreamAnalyzeMemoryGuard is the peak-memory regression guard for
// the streaming analyzer: analyzing N events must allocate less than
// materializing them would (the event slice alone costs ~88 bytes per
// event, before any analysis). The analyzer's state scales with the
// distinct-file population, not the event count — about 49 B/event
// amortized on the 8-hour seed trace — so the guard trips at 72 B/event,
// under the materialization floor with room for allocator noise.
func TestStreamAnalyzeMemoryGuard(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation inflates allocation; guard calibrated for the plain allocator")
	}
	if testing.Short() {
		t.Skip("B/event guard needs the 8-hour trace; fixed costs dominate short fixtures")
	}
	events := equivTrace(t)
	// Warm-up run so one-time costs (histogram arenas) don't bill the
	// measured pass.
	if _, err := analyzer.AnalyzeSource(trace.NewSliceSource(events), analyzer.Options{}); err != nil {
		t.Fatal(err)
	}
	var a *analyzer.Analysis
	delta := allocDelta(func() {
		var err error
		a, err = analyzer.AnalyzeSource(trace.NewSliceSource(events), analyzer.Options{})
		if err != nil {
			t.Fatal(err)
		}
	})
	runtime.KeepAlive(a)
	perEvent := float64(delta) / float64(len(events))
	if perEvent > 72 {
		t.Errorf("streaming analyzer allocated %.1f B/event over %d events (%d bytes total); "+
			"the streaming contract requires staying under the 88 B/event materialization floor (guard: 72)",
			perEvent, len(events), delta)
	}
}

// TestMergeMemoryGuard: the k-way merge over many sources must stay
// O(sources), not O(events) — draining a wide merge allocates a bounded
// number of bytes per event.
func TestMergeMemoryGuard(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation inflates allocation; guard calibrated for the plain allocator")
	}
	if testing.Short() {
		t.Skip("B/event guard needs the 8-hour trace; fixed costs dominate short fixtures")
	}
	events := equivTrace(t)
	// Split the trace round-robin into 16 time-ordered strands. Remapped
	// ids don't matter here; only allocation behavior is measured.
	const n = 16
	strands := make([][]trace.Event, n)
	for i, e := range events {
		strands[i%n] = append(strands[i%n], e)
	}
	drain := func() {
		sources := make([]trace.Source, n)
		for i := range strands {
			sources[i] = trace.NewSliceSource(strands[i])
		}
		if _, err := trace.CopySource(trace.NewWriter(discardWriter{}), trace.NewMergeSource(sources...)); err != nil {
			t.Fatal(err)
		}
	}
	drain() // warm up
	delta := allocDelta(drain)
	perEvent := float64(delta) / float64(len(events))
	if perEvent > 8 {
		t.Errorf("16-way merge allocated %.1f B/event (%d bytes total); want O(sources) state only",
			perEvent, delta)
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
