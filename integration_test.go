// End-to-end tests of the whole reproduction pipeline: generation,
// serialization, analysis, and simulation working together.
package bsdtrace

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"bsdtrace/internal/analyzer"
	"bsdtrace/internal/cachesim"
	"bsdtrace/internal/namei"
	"bsdtrace/internal/report"
	"bsdtrace/internal/trace"
	"bsdtrace/internal/workload"
)

// TestPipelineDeterminism: the same seed must produce a byte-identical
// rendered report, end to end.
func TestPipelineDeterminism(t *testing.T) {
	render := func() []byte {
		res, err := workload.Generate(workload.Config{Profile: "E3", Seed: 21, Duration: 30 * trace.Minute})
		if err != nil {
			t.Fatal(err)
		}
		a := analyzer.Analyze(res.Events, analyzer.Options{})
		tr := report.Traces{Names: []string{"E3"}, Analyses: []*analyzer.Analysis{a}}
		var buf bytes.Buffer
		if err := report.TableIII(tr).Render(&buf); err != nil {
			t.Fatal(err)
		}
		if err := report.TableV(tr).Render(&buf); err != nil {
			t.Fatal(err)
		}
		sim, err := cachesim.Simulate(res.Events, cachesim.Config{
			BlockSize: 4096, CacheSize: 2 << 20, Write: cachesim.DelayedWrite,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := report.ResidencyTable(sim).Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first := render()
	second := render()
	if !bytes.Equal(first, second) {
		t.Fatal("same seed rendered different reports")
	}
}

// TestFileRoundTripPreservesAnalysis: writing a trace to disk and reading
// it back must not change any analysis result.
func TestFileRoundTripPreservesAnalysis(t *testing.T) {
	res, err := workload.Generate(workload.Config{Profile: "C4", Seed: 5, Duration: 20 * trace.Minute})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "c4.trace")
	if err := trace.WriteFile(path, res.Events); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded, res.Events) {
		t.Fatal("events changed through file round trip")
	}
	a1 := analyzer.Analyze(res.Events, analyzer.Options{})
	a2 := analyzer.Analyze(loaded, analyzer.Options{})
	if a1.Overall != a2.Overall {
		t.Fatalf("analysis differs after round trip:\n%+v\n%+v", a1.Overall, a2.Overall)
	}
}

// TestSeedStability: the headline shapes are properties of the workload
// model, not of one lucky seed. Three seeds must all land inside loose
// brackets.
func TestSeedStability(t *testing.T) {
	for _, seed := range []int64{11, 22, 33} {
		res, err := workload.Generate(workload.Config{Profile: "A5", Seed: seed, Duration: trace.Hour})
		if err != nil {
			t.Fatal(err)
		}
		a := analyzer.Analyze(res.Events, analyzer.Options{})
		if f := a.Sequentiality.WholeFileFraction(analyzer.ClassReadOnly); f < 0.5 || f > 0.85 {
			t.Errorf("seed %d: whole-file read fraction %.2f out of bracket", seed, f)
		}
		if f := a.OpenTimes.FractionAtOrBelow(0.5); f < 0.6 || f > 0.95 {
			t.Errorf("seed %d: opens<=0.5s %.2f out of bracket", seed, f)
		}
		sim, err := cachesim.Simulate(res.Events, cachesim.Config{
			BlockSize: 4096, CacheSize: 4 << 20, Write: cachesim.DelayedWrite,
		})
		if err != nil {
			t.Fatal(err)
		}
		if m := sim.MissRatio(); m < 0.02 || m > 0.45 {
			t.Errorf("seed %d: 4MB delayed-write miss ratio %.2f out of bracket", seed, m)
		}
	}
}

// TestPaperShapesEndToEnd asserts the cross-artifact orderings the paper's
// conclusions rest on, over one trace: write-policy ordering, cache-size
// monotonicity, the Figure 7 crossover, and the block-size upturn.
func TestPaperShapesEndToEnd(t *testing.T) {
	res, err := workload.Generate(workload.Config{Profile: "A5", Seed: 1, Duration: 2 * trace.Hour})
	if err != nil {
		t.Fatal(err)
	}
	events := res.Events

	sizes := cachesim.PaperCacheSizes()
	pols := cachesim.PaperPolicies()
	sweep, err := cachesim.PolicySweep(events, 4096, sizes, pols)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sizes {
		for j := 1; j < len(pols); j++ {
			if sweep[i][j].MissRatio() > sweep[i][j-1].MissRatio()+1e-9 {
				t.Errorf("policy ordering violated at %d bytes: %v then %v",
					sizes[i], sweep[i][j-1].MissRatio(), sweep[i][j].MissRatio())
			}
		}
		if i > 0 {
			for j := range pols {
				if sweep[i][j].MissRatio() > sweep[i-1][j].MissRatio()+1e-9 {
					t.Errorf("cache-size monotonicity violated for %s", pols[j].Name)
				}
			}
		}
	}
	// The UNIX configuration roughly halves disk traffic (paper §6.4:
	// "this combination of cache size and write policy should reduce
	// disk accesses by about a factor of two").
	unix := sweep[0][1].MissRatio() // 390 KB, 30-second flushes
	if unix < 0.3 || unix > 0.8 {
		t.Errorf("UNIX-config miss ratio %.2f not in the halving regime", unix)
	}

	// Figure 7: paging hurts small caches, helps big ones.
	paging, err := cachesim.PagingSweep(events, 4096, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if paging[0][1].MissRatio() <= paging[0][0].MissRatio() {
		t.Errorf("paging should degrade the smallest cache")
	}
	last := len(sizes) - 1
	if paging[last][1].MissRatio() >= paging[last][0].MissRatio() {
		t.Errorf("paging should improve the largest cache")
	}

	// Table VII: the 32-KB upturn at the smallest cache.
	block, err := cachesim.BlockSizeSweep(events, cachesim.PaperBlockSizes(), []int64{400 << 10})
	if err != nil {
		t.Fatal(err)
	}
	n := len(block.BlockSizes)
	if block.Results[n-1][0].DiskIOs() <= block.Results[n-2][0].DiskIOs() {
		t.Errorf("32KB blocks should cost more I/Os than 16KB at a 400KB cache")
	}
	// And 8 KB must beat 1 KB everywhere (the paper's strong claim).
	if block.Results[3][0].DiskIOs() >= block.Results[0][0].DiskIOs() {
		t.Errorf("8KB blocks should beat 1KB blocks")
	}
}

// TestMetadataHookDoesNotPerturbTrace: attaching the namei simulator must
// not change the generated trace (hooks observe, never steer).
func TestMetadataHookDoesNotPerturbTrace(t *testing.T) {
	plain, err := workload.Generate(workload.Config{Profile: "A5", Seed: 9, Duration: 20 * trace.Minute})
	if err != nil {
		t.Fatal(err)
	}
	hooked, err := workload.Generate(workload.Config{
		Profile: "A5", Seed: 9, Duration: 20 * trace.Minute, Meta: namei.New(namei.Config{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Events, hooked.Events) {
		t.Fatal("metadata hook changed the trace")
	}
}

// TestStackDistanceTracksSimulator: on the real workload, the one-pass
// stack curve and the simulator's delayed-write curve must tell the same
// story (strongly correlated, both falling with cache size).
func TestStackDistanceTracksSimulator(t *testing.T) {
	res, err := workload.Generate(workload.Config{Profile: "A5", Seed: 2, Duration: trace.Hour})
	if err != nil {
		t.Fatal(err)
	}
	stack, err := cachesim.StackDistances(res.Events, 4096)
	if err != nil {
		t.Fatal(err)
	}
	prevStack, prevSim := math.Inf(1), math.Inf(1)
	for _, cs := range []int64{512 << 10, 2 << 20, 8 << 20} {
		sim, err := cachesim.Simulate(res.Events, cachesim.Config{
			BlockSize: 4096, CacheSize: cs, Write: cachesim.DelayedWrite,
		})
		if err != nil {
			t.Fatal(err)
		}
		s, m := stack.MissRatio(cs), sim.MissRatio()
		if s > prevStack+1e-9 || m > prevSim+1e-9 {
			t.Errorf("curves not falling at %d bytes", cs)
		}
		prevStack, prevSim = s, m
	}
}
